"""The unified toolflow facade: ``Pipeline`` and ``Evaluation``.

Every consumer of the toolchain — the CLI, the bench harness, the
design-space-exploration engine, and the examples — used to hand-wire
the same four calls: ``translate_module`` -> ``PassManager`` ->
``simulate`` -> ``synthesize``.  :class:`Pipeline` packages that flow
behind one chainable entry point::

    from repro import Pipeline

    ev = (Pipeline("img_scale")
          .optimize("localize,banking=4,fusion,tuning")
          .simulate()
          .synthesize())
    print(ev.cycles, ev.time_us, ev.synth.alms)

A Pipeline accepts a workload name, a :class:`~repro.workloads.Workload`,
MiniC source text, or an already-compiled
:class:`~repro.frontend.ir.Module`.  ``optimize`` takes pass instances,
:class:`~repro.opt.PassSpec` objects, or the spec mini-language
(``"banking=4,tiling=2"``, see :mod:`repro.opt.specs`).  Each stage
returns the Pipeline so the chain reads like the paper's Figure 1;
``synthesize()`` (or :meth:`Pipeline.evaluation`) returns the typed
:class:`Evaluation` aggregate.

The old hand-wired pattern keeps working — the four building blocks
remain public and `repro.bench.run_workload` is now a thin shim over
this facade.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import telemetry
from ..errors import (ReproError, WorkloadError, error_document,
                      family_for)
from ..frontend import compile_minic, translate_module
from ..frontend.interp import Interpreter, Memory
from ..frontend.ir import Module
from ..opt import PassManager, PassResult, coerce_passes
from ..rtl import SynthesisReport, synthesize
from ..sim import (BatchResult, SimParams, SimResult, simulate,
                   simulate_batch)
from ..types import FloatType
from ..workloads import WORKLOADS, Workload
from .requests import (  # noqa: F401  (re-exported wire schema)
    EVAL_SCHEMA,
    SIM_FIELDS,
    EvaluationRequest,
    EvaluationResponse,
    evaluation_doc,
)


@dataclass
class Evaluation:
    """Typed aggregate of one end-to-end pipeline evaluation."""

    name: str
    workload: Optional[str]
    variant: str
    #: Canonical pass-spec string, or None when the pipeline was built
    #: from pre-constructed pass instances (not spec-recoverable).
    passes: Optional[str]
    pass_log: List[PassResult] = field(default_factory=list)
    sim: Optional[SimResult] = None
    synth: Optional[SynthesisReport] = None
    #: Result of behavior verification: True/False, or None when the
    #: simulation ran unchecked (or never ran).
    verified: Optional[bool] = None

    @property
    def cycles(self) -> Optional[int]:
        return self.sim.cycles if self.sim else None

    @property
    def stats(self):
        return self.sim.stats if self.sim else None

    @property
    def results(self) -> List:
        return self.sim.results if self.sim else []

    @property
    def time_us(self) -> Optional[float]:
        """FPGA wall-clock estimate; needs both sim and synthesis."""
        if self.sim is None or self.synth is None:
            return None
        return self.sim.cycles / self.synth.fpga_mhz

    def to_json(self) -> Dict:
        doc: Dict = {
            "name": self.name,
            "workload": self.workload,
            "variant": self.variant,
            "passes": self.passes,
            "verified": self.verified,
            "pass_log": [{"name": r.pass_name, "changed": r.changed,
                          "dN": r.delta_nodes, "dE": r.delta_edges,
                          "wall_ms": round(r.wall_ms, 3)}
                         for r in self.pass_log],
        }
        if self.sim is not None:
            doc["cycles"] = self.sim.cycles
            doc["results"] = list(self.sim.results)
            doc["stats"] = self.sim.stats.to_json()
        if self.synth is not None:
            doc["synth"] = self.synth.to_json()
            if self.sim is not None:
                doc["time_us"] = self.time_us
        return doc

    def __repr__(self) -> str:
        bits = [self.name]
        if self.sim is not None:
            bits.append(f"{self.sim.cycles} cyc")
        if self.time_us is not None:
            bits.append(f"{self.time_us:.2f} us")
        if self.synth is not None:
            bits.append(f"{self.synth.alms} ALMs")
        return f"Evaluation({', '.join(bits)})"


class Pipeline:
    """Chainable workload -> uIR -> uopt -> sim -> synthesis facade."""

    def __init__(self, workload, *, variant: str = "base",
                 name: Optional[str] = None):
        self.workload: Optional[Workload] = None
        self.variant = variant
        with telemetry.tracer().span("pipeline.frontend") as _sp:
            if isinstance(workload, Workload):
                self.workload = workload
            elif isinstance(workload, Module):
                self.module = workload
            elif isinstance(workload, str):
                if _looks_like_source(workload):
                    self.module = compile_minic(
                        workload, filename=name or "<pipeline>")
                elif workload in WORKLOADS:
                    self.workload = WORKLOADS[workload]
                else:
                    raise ReproError(
                        f"{workload!r} is neither a known workload "
                        f"({', '.join(sorted(WORKLOADS))}) nor MiniC "
                        f"source text")
            else:
                raise ReproError(
                    f"cannot build a Pipeline from "
                    f"{type(workload).__name__}")
            if self.workload is not None:
                if variant != "base" and \
                        variant not in self.workload.variants:
                    raise ReproError(
                        f"workload {self.workload.name!r} has no "
                        f"variant {variant!r}")
                self.module = self.workload.module(variant)
                default = self.workload.name if variant == "base" \
                    else f"{self.workload.name}_{variant}"
            else:
                default = "pipeline"
            self.name = name or default
            self.circuit = translate_module(self.module, name=self.name)
            _sp.set(name=self.name)
        if telemetry.enabled():
            telemetry.annotate("workload", self.workload.name
                               if self.workload else self.name)
        self.pass_log: List[PassResult] = []
        #: Canonical spec of everything optimize() ran, None once a
        #: non-spec pass instance slips in.
        self.pass_spec: Optional[str] = ""
        self.sim: Optional[SimResult] = None
        self.memory: Optional[Memory] = None
        self.synth: Optional[SynthesisReport] = None
        self.verified: Optional[bool] = None

    @classmethod
    def from_circuit(cls, circuit, *, workload=None,
                     variant: str = "base") -> "Pipeline":
        """Wrap an already-translated (possibly optimized) circuit."""
        pipe = cls.__new__(cls)
        pipe.workload = WORKLOADS[workload] if isinstance(workload, str) \
            else workload
        pipe.variant = variant
        pipe.module = pipe.workload.module(variant) if pipe.workload \
            else None
        pipe.name = circuit.name
        pipe.circuit = circuit
        pipe.pass_log = []
        pipe.pass_spec = None
        pipe.sim = None
        pipe.memory = None
        pipe.synth = None
        pipe.verified = None
        return pipe

    # -- stage 2: uopt ---------------------------------------------------
    def optimize(self, passes=None, *, validate: bool = True,
                 validate_each: bool = False) -> "Pipeline":
        """Run a pass pipeline (spec string / specs / instances)."""
        instances, label = coerce_passes(passes)
        manager = PassManager(instances, validate=validate,
                              validate_each=validate_each)
        with telemetry.tracer().span("pipeline.optimize",
                                     passes=label or "") as _sp:
            self.pass_log.extend(manager.run(self.circuit))
            _sp.set(n_passes=len(manager.log))
        if self.pass_spec is None or label is None:
            self.pass_spec = None
        else:
            self.pass_spec = ",".join(
                p for p in (self.pass_spec, label) if p)
        return self

    # -- stage "sim": cycle-level execution ------------------------------
    def simulate(self, params: Optional[SimParams] = None, *,
                 args: Optional[Sequence] = None,
                 memory: Optional[Memory] = None,
                 kernel: Optional[str] = None,
                 check: bool = True) -> "Pipeline":
        """Simulate the circuit; verify behavior unless ``check=False``.

        Workload pipelines default ``args``/``memory`` from the
        workload and verify against its golden data.  Source/module
        pipelines snapshot the initial memory image and compare the
        simulated result against the reference interpreter run on the
        same snapshot.  ``kernel`` ("event" / "dense" / "compiled")
        overrides the kernel without building a full ``SimParams``.
        """
        if kernel is not None:
            params = replace(params or SimParams(), kernel=kernel)
        if self.workload is not None:
            if args is None:
                args = self.workload.args_for(self.variant)
            if memory is None:
                memory = self.workload.fresh_memory(self.variant)
        else:
            if memory is None:
                memory = Memory(self.module)
            args = args or ()
        golden: Optional[Memory] = None
        if check and self.workload is None:
            golden = Memory(self.module)
            golden.words[:] = memory.words
        tel = telemetry.tracer()
        with tel.span("pipeline.simulate",
                      kernel=(params.kernel if params
                              else "event")) as _sp:
            self.sim = simulate(self.circuit, memory, list(args),
                                params)
            _sp.set(cycles=self.sim.cycles)
        if telemetry.enabled():
            from ..core.serialize import circuit_fingerprint
            telemetry.note_fingerprint(circuit_fingerprint(self.circuit))
        self.memory = memory
        if not check:
            self.verified = None
            return self
        with tel.span("pipeline.verify"):
            if self.workload is not None:
                self.workload.verify(memory, self.variant)  # raises
                self.verified = True
            else:
                returned = Interpreter(self.module, golden).run(*args)
                if returned is None:
                    expected: List = []
                elif isinstance(returned, (list, tuple)):
                    expected = list(returned)
                else:
                    expected = [returned]
                self.verified = (memory.words == golden.words
                                 and list(self.sim.results) == expected)
                if not self.verified:
                    raise WorkloadError(
                        f"{self.name}: simulated memory/results "
                        f"diverge from the reference interpreter")
        return self

    # -- stage "sim", batched --------------------------------------------
    def evaluate_many(self, args_list: Optional[Sequence[Sequence]] = None,
                      params: Optional[SimParams] = None, *,
                      kernel: Optional[str] = None,
                      check: bool = True) -> BatchResult:
        """Simulate N independent workload instances in one batched run.

        Each entry of ``args_list`` is one lane's root-argument list;
        ``None`` replicates the pipeline's default arguments across
        ``params.batch`` lanes (which must then be set).  All lanes
        share this pipeline's circuit — same fingerprint, so the whole
        batch steps through one compiled kernel
        (:func:`repro.sim.simulate_batch`); per-lane results and
        memory are bit-identical to N independent runs.

        With ``check=True`` every surviving lane is verified: workload
        pipelines run the workload golden check per lane, module
        pipelines re-run the reference interpreter on each lane's
        input snapshot.  A diverging lane raises
        :class:`~repro.errors.WorkloadError` naming the lane;
        otherwise ``BatchResult.verified`` records the per-lane
        outcomes (failed lanes stay ``False``).
        """
        if kernel is not None:
            params = replace(params or SimParams(), kernel=kernel)
        params = params or SimParams()
        if args_list is None:
            if not params.batch:
                raise ReproError(
                    "evaluate_many needs args_list or SimParams.batch")
            default = self.workload.args_for(self.variant) \
                if self.workload is not None else ()
            args_list = [list(default) for _ in range(params.batch)]
        else:
            args_list = [list(a) for a in args_list]
        n = len(args_list)
        if self.workload is not None:
            memories = [self.workload.fresh_memory(self.variant)
                        for _ in range(n)]
        else:
            memories = [Memory(self.module) for _ in range(n)]
        snapshots = [list(m.words) for m in memories] if check else None
        with telemetry.tracer().span("pipeline.simulate_batch",
                                     lanes=n) as _sp:
            batch = simulate_batch(self.circuit, memories, args_list,
                                   replace(params, batch=n))
            _sp.set(mode=batch.mode,
                    ok=sum(e is None for e in batch.errors))
        if not check:
            return batch
        verified = [False] * n
        for i in range(n):
            if batch.results[i] is None:
                continue
            mem = memories[i]
            if self.workload is not None:
                self.workload.verify(mem, self.variant)  # raises on fail
            else:
                golden = Memory(self.module)
                golden.words[:] = snapshots[i]
                returned = Interpreter(self.module, golden).run(
                    *args_list[i])
                if returned is None:
                    expected: List = []
                elif isinstance(returned, (list, tuple)):
                    expected = list(returned)
                else:
                    expected = [returned]
                if (mem.words != golden.words
                        or list(batch.results[i].results) != expected):
                    raise WorkloadError(
                        f"{self.name}: lane {i} diverges from the "
                        f"reference interpreter")
            verified[i] = True
        batch.verified = verified
        return batch

    # -- stage 3: synthesis ----------------------------------------------
    def synthesize(self, name: Optional[str] = None) -> Evaluation:
        """Estimate FPGA/ASIC quality and return the full Evaluation."""
        with telemetry.tracer().span("pipeline.synthesize") as _sp:
            self.synth = synthesize(self.circuit, name=name or self.name)
            _sp.set(alms=self.synth.alms, fpga_mhz=self.synth.fpga_mhz)
        return self.evaluation()

    def evaluation(self) -> Evaluation:
        """Typed aggregate of everything the chain has produced."""
        return Evaluation(
            name=self.name,
            workload=self.workload.name if self.workload else None,
            variant=self.variant,
            passes=self.pass_spec,
            pass_log=list(self.pass_log),
            sim=self.sim,
            synth=self.synth,
            verified=self.verified)

    # -- conveniences ----------------------------------------------------
    @property
    def cycles(self) -> Optional[int]:
        return self.sim.cycles if self.sim else None

    @property
    def stats(self):
        return self.sim.stats if self.sim else None

    def __repr__(self) -> str:
        stages = ["translated"]
        if self.pass_log:
            stages.append(f"{len(self.pass_log)} passes")
        if self.sim is not None:
            stages.append(f"simulated {self.sim.cycles} cyc")
        if self.synth is not None:
            stages.append("synthesized")
        return f"Pipeline({self.name}: {', '.join(stages)})"


def _looks_like_source(text: str) -> bool:
    """MiniC source vs workload name: source has structure, names don't."""
    return any(ch in text for ch in "\n{};(")


# ---------------------------------------------------------------------------
# The request/response execution layer (wire schema: repro.eval/v1)
# ---------------------------------------------------------------------------
#
# EvaluationRequest is the one serialized shape of an evaluation; the
# CLI, the examples, and the repro.serve daemon all construct it and
# funnel through run_request/execute below, so a local call and a
# served call are the same typed computation.

def sim_wire_dict(params: Optional[SimParams]) -> Dict[str, object]:
    """A SimParams as a wire-safe ``sim`` dict (non-default fields
    only, fault plans as JSON).  Raises for host-local callbacks that
    cannot cross a process boundary."""
    if params is None:
        return {}
    if params.heartbeat is not None or params.heartbeat_cycles:
        raise ReproError(
            "SimParams.heartbeat is host-local and cannot be "
            "serialized into an EvaluationRequest")
    defaults = SimParams()
    sim: Dict[str, object] = {}
    for name in SIM_FIELDS:
        value = getattr(params, name)
        if value == getattr(defaults, name):
            continue
        sim[name] = value.to_json() if name == "faults" else value
    return sim


def request_for(workload, passes=None,
                params: Optional[SimParams] = None, *,
                variant: str = "base", check: bool = True,
                name: Optional[str] = None,
                args: Optional[Sequence] = None,
                args_list: Optional[Sequence[Sequence]] = None,
                seed: Optional[int] = None) -> EvaluationRequest:
    """Build the :class:`EvaluationRequest` for one evaluation.

    ``workload`` is a workload name, :class:`Workload`, or MiniC
    source text; ``passes`` must be spec-recoverable (a spec string,
    specs, or None — pre-built pass instances cannot be serialized).
    """
    from ..opt import coerce_passes as _coerce
    if isinstance(workload, Workload):
        target, source = workload.name, None
    elif isinstance(workload, str) and _looks_like_source(workload):
        target, source = None, workload
    elif isinstance(workload, str):
        target, source = workload, None
    else:
        raise ReproError(
            f"cannot build an EvaluationRequest from "
            f"{type(workload).__name__}")
    if passes is None or isinstance(passes, str):
        spec = passes or ""
    else:
        _instances, spec = _coerce(passes)
        if spec is None:
            raise ReproError(
                "pass instances are not spec-recoverable; give "
                "request_for a spec string (see repro.opt.specs)")
    return EvaluationRequest(
        workload=target, source=source, variant=variant, passes=spec,
        args=args, args_list=args_list, sim=sim_wire_dict(params),
        check=check, seed=seed, name=name)


def coerce_request_args(module: Module, raw: Sequence) -> List:
    """Type raw (possibly textual) root arguments against @main."""
    main = module.main
    if len(raw) != len(main.args):
        raise ReproError(
            f"@main takes {len(main.args)} argument(s) "
            f"({', '.join(f'{a.name}: {a.type}' for a in main.args)}), "
            f"got {len(raw)}")
    values: List = []
    for value, arg in zip(raw, main.args):
        if isinstance(arg.type, FloatType):
            values.append(float(value))
        else:
            values.append(int(value))
    return values


def build_front(request: EvaluationRequest) -> Pipeline:
    """The reusable front half of a request: frontend + optimize.

    Everything up to (not including) simulation is a pure function of
    the request's :meth:`~EvaluationRequest.group_key` fields, so the
    serve worker caches the result across requests (the hot-circuit
    LRU) and re-simulates the same circuit object — which also keeps
    the object-identity compiled-kernel memo warm.
    """
    pipe = Pipeline(request.workload if request.workload is not None
                    else request.source,
                    variant=request.variant, name=request.name)
    pipe.optimize(request.passes or None)
    return pipe


def run_request(request: EvaluationRequest, *,
                pipeline: Optional[Pipeline] = None
                ) -> Tuple[Pipeline, Union[Evaluation, BatchResult]]:
    """Execute a request in-process; the one evaluation code path.

    Returns the driven :class:`Pipeline` (so local callers keep full
    access to stats, observers, and the optimized circuit) plus the
    :class:`Evaluation` (scalar requests) or :class:`BatchResult`
    (batched requests; the pipeline is synthesized either way).
    Raises :class:`~repro.errors.ReproError` subclasses on failure —
    :func:`execute` is the wrapper that converts them into error
    responses.

    ``pipeline`` short-circuits the front end with an already
    optimized pipeline for this request's group (must match the
    request's workload/source, variant, and passes — the caller owns
    that contract; the serve worker keys its LRU on ``group_key``).
    """
    params = request.sim_params()
    pipe = pipeline if pipeline is not None else build_front(request)
    if request.is_batch:
        args_list = None
        if request.args_list is not None:
            args_list = [coerce_request_args(pipe.module, lane)
                         for lane in request.args_list]
        elif request.args is not None:
            # sim.batch lanes replicating the request's (typed) args.
            args_list = [coerce_request_args(pipe.module, request.args)
                         ] * (params.batch or 1)
        batch = pipe.evaluate_many(args_list, params,
                                   check=request.check)
        pipe.synthesize()
        return pipe, batch
    args = None
    memory = None
    if request.args is not None:
        args = coerce_request_args(pipe.module, request.args)
    if request.source is not None and request.seed is not None:
        from ..util.rng import seed_memory
        memory = Memory(pipe.module)
        seed_memory(memory, request.seed)
    pipe.simulate(params, args=args, memory=memory,
                  check=request.check)
    return pipe, pipe.synthesize()


def batch_evaluation_docs(pipe: Pipeline, batch: BatchResult
                          ) -> List[Dict]:
    """Per-lane deterministic evaluation documents of a batched run.

    Each surviving lane's document is **bit-identical** to the
    document a scalar run of that lane would produce (PR-6's per-lane
    identity guarantee carried up to the wire schema); failed lanes
    yield ``{"lane": i, "error": <doc>}`` instead.
    """
    docs: List[Dict] = []
    for i in range(batch.lanes):
        if batch.results[i] is None:
            docs.append({"lane": i, "error": batch.errors[i]})
            continue
        verified = batch.verified[i] if batch.verified is not None \
            else None
        lane_ev = Evaluation(
            name=pipe.name, workload=pipe.workload.name
            if pipe.workload else None, variant=pipe.variant,
            passes=pipe.pass_spec, pass_log=list(pipe.pass_log),
            sim=batch.results[i], synth=pipe.synth,
            verified=verified)
        docs.append(evaluation_doc(lane_ev, lane=i))
    return docs


def execute(request: EvaluationRequest, *,
            pipeline: Optional[Pipeline] = None) -> EvaluationResponse:
    """Run one request to a typed response (never raises ReproError).

    This is the server's worker entry point and the client-visible
    semantics of local execution: errors become PR-3 style documents
    with a retry ``family``; success carries the deterministic
    evaluation payload(s).
    """
    key = request.canonical_key()
    t0 = time.perf_counter()
    try:
        pipe, result = run_request(request, pipeline=pipeline)
    except ReproError as exc:
        doc = error_document(exc)
        doc["family"] = family_for(exc)
        return EvaluationResponse(
            status="error", request_key=key, error=doc,
            meta={"wall_s": round(time.perf_counter() - t0, 4)})
    meta = {"wall_s": round(time.perf_counter() - t0, 4)}
    if isinstance(result, BatchResult):
        meta["batch_mode"] = result.mode
        return EvaluationResponse(
            status="ok", request_key=key,
            lanes=batch_evaluation_docs(pipe, result), meta=meta)
    return EvaluationResponse(
        status="ok", request_key=key,
        evaluation=evaluation_doc(result), meta=meta)


def evaluate(workload, passes=None, params: Optional[SimParams] = None,
             *, variant: str = "base", check: bool = True,
             name: Optional[str] = None,
             args: Optional[Sequence] = None) -> Evaluation:
    """One-call convenience: build, optimize, simulate, synthesize.

    Spec-recoverable calls are routed through the typed
    :class:`EvaluationRequest` — the exact object the CLI and the
    ``repro.serve`` daemon exchange — so a local ``evaluate`` and a
    served one are the same computation.  Pre-built pass instances
    (not serializable) keep the direct chain.
    """
    try:
        request = request_for(workload, passes, params,
                              variant=variant, check=check,
                              name=name, args=args)
    except ReproError:
        pipe = Pipeline(workload, variant=variant, name=name)
        pipe.optimize(passes)
        pipe.simulate(params, args=args, check=check)
        return pipe.synthesize()
    return run_request(request)[1]


def evaluate_many(workload, args_list=None,
                  params: Optional[SimParams] = None, *,
                  passes=None, variant: str = "base",
                  check: bool = True,
                  name: Optional[str] = None) -> BatchResult:
    """One-call batched convenience over the typed request path."""
    request = request_for(workload, passes, params, variant=variant,
                          check=check, name=name, args_list=args_list)
    if not request.is_batch:
        raise ReproError(
            "evaluate_many needs args_list or SimParams.batch")
    return run_request(request)[1]

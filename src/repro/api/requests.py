"""The evaluation wire schema: ``EvaluationRequest`` / ``EvaluationResponse``.

One typed, versioned request/response pair (schema ``repro.eval/v1``)
is the *only* shape an evaluation crosses a process boundary in: the
CLI builds it from flags, :func:`repro.api.execute` consumes it, the
``repro.serve`` daemon ships it over the socket, and the client
library hands it back — so local and remote evaluation are the same
call and serialize identically everywhere.

Design rules:

* **Frozen.**  Both dataclasses are immutable (payload documents are
  held by convention-immutable reference); a request's
  :meth:`~EvaluationRequest.canonical_key` is therefore stable for its
  lifetime and safe to dedup on.
* **Versioned + schema-checked.**  ``to_json`` stamps the schema;
  ``from_json`` rejects unknown schemas and unknown keys instead of
  silently dropping them, so a client/server version skew fails loudly.
* **Deterministic payloads.**  The response's ``evaluation`` document
  (:func:`evaluation_doc`) carries only execution-strategy-independent
  fields — cycles, results, synthesis, verification — never wall-clock
  timings or per-run observability state.  That is what makes the
  serving guarantees testable: a deduped, batch-coalesced, or cached
  execution must produce **bit-identical** payload bytes to a direct
  sequential scalar evaluation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import ReproError

EVAL_SCHEMA = "repro.eval/v1"

#: SimParams fields a request may set over the wire.  Everything else
#: (callbacks, validation toggles) is host-local policy.
SIM_FIELDS = (
    "kernel", "max_cycles", "deadlock_window",
    "loop_invocation_window", "decoupled_queue_depth", "observe",
    "trace_capacity", "compile_fallback", "wallclock_timeout",
    "batch", "faults", "validate",
)

#: Fields that may *never* differ between requests coalesced into one
#: batched lane-group (args are the lanes, so they may).
GROUP_FIELDS = ("workload", "source", "variant", "passes", "sim",
                "check", "seed")


def _digest(doc: Dict) -> str:
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class EvaluationRequest:
    """One evaluation, as it crosses a process boundary.

    Exactly one of ``workload`` (built-in workload name) or ``source``
    (MiniC text) names the design.  ``args`` are the root arguments of
    one run (``None`` = the workload defaults); ``args_list`` turns
    the request into a batched ``evaluate_many`` over one lane per
    entry (as does ``sim["batch"]`` with replicated default args).
    ``sim`` may set any field in :data:`SIM_FIELDS`; ``sim["faults"]``
    is a :class:`~repro.sim.FaultPlan` JSON document.
    """

    workload: Optional[str] = None
    source: Optional[str] = None
    variant: str = "base"
    passes: str = ""
    args: Optional[Tuple] = None
    args_list: Optional[Tuple[Tuple, ...]] = None
    sim: Dict[str, object] = field(default_factory=dict)
    check: bool = True
    #: Pseudo-random memory seeding for ``source`` requests (mirrors
    #: ``repro simulate --seed``); rejected for batched requests.
    seed: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self):
        if (self.workload is None) == (self.source is None):
            raise ReproError(
                "EvaluationRequest needs exactly one of workload= "
                "or source=")
        sim = dict(self.sim or {})
        unknown = set(sim) - set(SIM_FIELDS)
        if unknown:
            raise ReproError(
                f"unknown sim field(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(SIM_FIELDS)}")
        object.__setattr__(self, "sim", sim)
        object.__setattr__(self, "passes", self.passes or "")
        if self.args is not None:
            object.__setattr__(self, "args", tuple(self.args))
        if self.args_list is not None:
            object.__setattr__(
                self, "args_list",
                tuple(tuple(a) for a in self.args_list))
        if self.seed is not None and self.is_batch:
            raise ReproError(
                "seed= is a scalar-request knob; batched requests "
                "build their own per-lane memories")
        if self.seed is not None and self.workload is not None:
            raise ReproError(
                "seed= seeds source-request memories; workloads own "
                "their memory images")

    # -- views -------------------------------------------------------------
    @property
    def is_batch(self) -> bool:
        if self.args_list is not None:
            return True
        batch = self.sim.get("batch")
        return bool(batch and batch > 1)

    @property
    def kind(self) -> str:
        return "evaluate_many" if self.is_batch else "evaluate"

    def sim_params(self):
        """Materialize the request's :class:`~repro.sim.SimParams`."""
        from ..sim import FaultPlan, SimParams
        sim = dict(self.sim)
        plan = sim.pop("faults", None)
        if plan is not None:
            plan = FaultPlan.from_json(plan)
        return SimParams(faults=plan, **sim)

    # -- identity ----------------------------------------------------------
    def canonical_key(self) -> str:
        """Content identity of the request — the serving dedup key.
        Two requests with equal keys are guaranteed the same response
        payload, so one execution may answer both."""
        return _digest(self.to_json())

    def group_key(self) -> str:
        """Coalescing identity: requests sharing a group key differ
        only in their root arguments, so they may ride one
        ``simulate_batch`` lane-group (one front-end + one compiled
        circuit for the whole group)."""
        doc = self.to_json()
        return _digest({k: doc.get(k) for k in GROUP_FIELDS})

    @property
    def coalescible(self) -> bool:
        """Whether the serving batcher may fold this request into a
        lane-group: scalar evaluate, no fault plan (fault batches are
        forced sequential anyway), no memory seeding."""
        return (not self.is_batch and self.seed is None
                and self.sim.get("faults") is None)

    # -- wire --------------------------------------------------------------
    def to_json(self) -> Dict:
        return {
            "schema": EVAL_SCHEMA,
            "kind": self.kind,
            "workload": self.workload,
            "source": self.source,
            "variant": self.variant,
            "passes": self.passes,
            "args": None if self.args is None else list(self.args),
            "args_list": None if self.args_list is None
            else [list(a) for a in self.args_list],
            "sim": dict(self.sim),
            "check": self.check,
            "seed": self.seed,
            "name": self.name,
        }

    @classmethod
    def from_json(cls, doc: Mapping) -> "EvaluationRequest":
        _check_schema(doc, "EvaluationRequest")
        _check_keys(cls, doc, "EvaluationRequest", extra=("kind",))
        return cls(
            workload=doc.get("workload"),
            source=doc.get("source"),
            variant=doc.get("variant", "base"),
            passes=doc.get("passes", ""),
            args=doc.get("args"),
            args_list=doc.get("args_list"),
            sim=doc.get("sim"),
            check=doc.get("check", True),
            seed=doc.get("seed"),
            name=doc.get("name"))

    def describe(self) -> str:
        target = self.workload or "<source>"
        bits = [target]
        if self.variant != "base":
            bits.append(f"variant={self.variant}")
        if self.passes:
            bits.append(f"passes={self.passes}")
        if self.sim.get("kernel"):
            bits.append(f"kernel={self.sim['kernel']}")
        if self.is_batch:
            lanes = len(self.args_list) if self.args_list \
                else self.sim.get("batch")
            bits.append(f"batch={lanes}")
        return " ".join(bits)


@dataclass(frozen=True)
class EvaluationResponse:
    """What one :class:`EvaluationRequest` produced.

    ``evaluation`` (scalar requests) and ``lanes`` (batched requests)
    hold deterministic :func:`evaluation_doc` documents; ``error`` is
    a PR-3 style error document with a retry ``family``.  ``meta`` is
    the one deliberately non-deterministic slot (wall time, dedup and
    batching provenance) — identity comparisons must ignore it, and
    the tests do.
    """

    status: str                      # "ok" | "error"
    request_key: str = ""
    evaluation: Optional[Dict] = None
    lanes: Optional[List[Dict]] = None
    error: Optional[Dict] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.status not in ("ok", "error"):
            raise ReproError(
                f"EvaluationResponse status must be ok|error, "
                f"got {self.status!r}")
        object.__setattr__(self, "meta", dict(self.meta or {}))

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def cycles(self) -> Optional[int]:
        if self.evaluation is not None:
            return self.evaluation.get("cycles")
        return None

    def payload(self) -> Dict:
        """The deterministic identity payload: the response minus
        ``meta``.  Dedup subscribers, batch coalescing, and direct
        execution must all agree on these bytes."""
        doc = self.to_json()
        doc.pop("meta")
        return doc

    def to_json(self) -> Dict:
        return {
            "schema": EVAL_SCHEMA,
            "status": self.status,
            "request_key": self.request_key,
            "evaluation": self.evaluation,
            "lanes": self.lanes,
            "error": self.error,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_json(cls, doc: Mapping) -> "EvaluationResponse":
        _check_schema(doc, "EvaluationResponse")
        _check_keys(cls, doc, "EvaluationResponse")
        return cls(status=doc.get("status", "error"),
                   request_key=doc.get("request_key", ""),
                   evaluation=doc.get("evaluation"),
                   lanes=doc.get("lanes"),
                   error=doc.get("error"),
                   meta=doc.get("meta"))

    def describe(self) -> str:
        if not self.ok:
            err = self.error or {}
            return f"ERROR[{err.get('error')}]: {err.get('message')}"
        if self.lanes is not None:
            cycles = sorted({d.get("cycles") for d in self.lanes})
            return (f"ok: {len(self.lanes)} lane(s), cycles="
                    f"{cycles[0] if len(cycles) == 1 else cycles}")
        ev = self.evaluation or {}
        bits = [f"{ev.get('cycles')} cyc"]
        if ev.get("time_us") is not None:
            bits.append(f"{ev['time_us']:.2f} us")
        if ev.get("synth"):
            bits.append(f"{ev['synth'].get('alms')} ALMs")
        return "ok: " + ", ".join(bits)


def _check_schema(doc: Mapping, what: str) -> None:
    schema = doc.get("schema")
    if schema != EVAL_SCHEMA:
        raise ReproError(
            f"{what}: unsupported schema {schema!r} "
            f"(this side speaks {EVAL_SCHEMA})")


def _check_keys(cls, doc: Mapping, what: str, extra=()) -> None:
    known = {f.name for f in fields(cls)} | {"schema"} | set(extra)
    unknown = set(doc) - known
    if unknown:
        raise ReproError(
            f"{what} has no field(s) {', '.join(sorted(unknown))} "
            f"(version skew? this side speaks {EVAL_SCHEMA})")


def evaluation_doc(evaluation, *, lane: Optional[int] = None) -> Dict:
    """Deterministic wire document of an :class:`~repro.api.Evaluation`.

    Strategy-independence contract: the document must be identical
    whether the evaluation ran scalar, deduped, batch-coalesced, or
    warm-cached — so it carries no wall-clock numbers and no merged
    batch statistics (``pass_log`` keeps the graph deltas, drops
    ``wall_ms``; ``SimStats`` stays host-local).
    """
    doc: Dict = {
        "name": evaluation.name,
        "workload": evaluation.workload,
        "variant": evaluation.variant,
        "passes": evaluation.passes,
        "verified": evaluation.verified,
        "pass_log": [{"name": r.pass_name, "changed": r.changed,
                      "dN": r.delta_nodes, "dE": r.delta_edges}
                     for r in evaluation.pass_log],
    }
    if evaluation.sim is not None:
        doc["cycles"] = evaluation.sim.cycles
        doc["results"] = list(evaluation.sim.results)
    if evaluation.synth is not None:
        doc["synth"] = evaluation.synth.to_json()
        if evaluation.sim is not None:
            doc["time_us"] = evaluation.time_us
    if lane is not None:
        doc["lane"] = lane
    return doc

"""The persistent run ledger: one JSONL record per CLI invocation.

Every telemetry-enabled ``repro`` command appends exactly one record
to ``<dir>/runs/ledger.jsonl`` (default dir ``.repro``): the command
and argv, wall time, the stage-span table, per-pass timings, circuit
fingerprints, the full metrics snapshot, and — on failure — the PR-3
error document.  The write/read discipline (atomic ``O_APPEND``
single-write appends, torn-line-skipping reads) lives in
:mod:`repro.util.jsonl` and is shared with the sweep journal
(:mod:`repro.dse.journal`); a golden test pins the byte format.

Browsable via ``repro runs list | show | diff`` (see
:mod:`repro.cli`); records are self-describing through
``schema: repro.run/v1``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from ..util.jsonl import append_jsonl, read_jsonl

LEDGER_SCHEMA = "repro.run/v1"
DEFAULT_DIR = ".repro"
LEDGER_NAME = "ledger.jsonl"

#: Every v1 record carries exactly these keys (schema-stability tests
#: pin the set; extend only with a schema bump or additive keys noted
#: in DESIGN.md section 10).
RECORD_KEYS = (
    "schema", "run_id", "ts", "command", "argv", "status", "exit_code",
    "wall_s", "stages", "spans", "passes", "fingerprints",
    "annotations", "metrics", "error",
)


def runs_dir(root: Optional[str] = None) -> str:
    return os.path.join(root or DEFAULT_DIR, "runs")


def new_run_id() -> str:
    """Sortable, collision-safe id: utc timestamp + pid + entropy."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid():05d}-{os.urandom(3).hex()}"


def build_record(*, run_id: str, command: str, argv: List[str],
                 status: str, exit_code: int, wall_s: float,
                 started: float,
                 stages: Optional[Dict[str, float]] = None,
                 spans: Optional[List[Dict]] = None,
                 passes: Optional[List[Dict]] = None,
                 fingerprints: Optional[List[str]] = None,
                 annotations: Optional[Dict] = None,
                 metrics: Optional[Dict] = None,
                 error: Optional[Dict] = None) -> Dict:
    """Assemble a v1 ledger record (all keys always present)."""
    return {
        "schema": LEDGER_SCHEMA,
        "run_id": run_id,
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(started)),
        "command": command,
        "argv": list(argv),
        "status": status,
        "exit_code": exit_code,
        "wall_s": round(wall_s, 4),
        "stages": {name: round(sec * 1e3, 3)
                   for name, sec in sorted((stages or {}).items())},
        "spans": list(spans or []),
        "passes": list(passes or []),
        "fingerprints": list(fingerprints or []),
        "annotations": dict(annotations or {}),
        "metrics": metrics if metrics is not None else {},
        "error": error,
    }


class RunLedger:
    """Append-only JSONL store of run records under one directory."""

    def __init__(self, root: Optional[str] = None):
        self.dir = runs_dir(root)
        self.path = os.path.join(self.dir, LEDGER_NAME)

    # -- writing -----------------------------------------------------------
    def append(self, record: Dict) -> str:
        """Atomically append one record; returns its ``run_id``."""
        append_jsonl(self.path, record)
        return record.get("run_id", "")

    # -- reading -----------------------------------------------------------
    def records(self) -> Tuple[List[Dict], int]:
        """All parsable records in append order, plus the count of
        skipped (torn / corrupt / wrong-schema) lines."""
        return read_jsonl(self.path, schema=LEDGER_SCHEMA)

    def find(self, ref: str) -> Dict:
        """Resolve ``ref`` to one record: ``last``, a negative index
        (``-2`` = second newest), or a unique ``run_id`` prefix."""
        records, _skipped = self.records()
        if not records:
            raise LookupError(f"run ledger {self.path} is empty")
        if ref in ("last", "latest", "-1"):
            return records[-1]
        # Prefix match wins over index parsing: run ids start with a
        # numeric date stamp, so "20260808" must find runs, not be
        # read as index twenty million.
        matches = [r for r in records
                   if r.get("run_id", "").startswith(ref)]
        if not matches:
            try:
                index = int(ref)
            except ValueError:
                raise LookupError(f"no run matching {ref!r}") from None
            try:
                return records[index]
            except IndexError:
                raise LookupError(
                    f"run index {ref} out of range "
                    f"(ledger has {len(records)} records)") from None
        ids = {r["run_id"] for r in matches}
        if len(ids) > 1:
            raise LookupError(
                f"{ref!r} is ambiguous: {', '.join(sorted(ids)[:5])}")
        return matches[-1]


# -- diffing ----------------------------------------------------------------

def _metric_values(record: Dict) -> Dict[str, float]:
    """Flatten a record's metrics snapshot to ``{name{labels}: value}``
    (histograms contribute their sum and count)."""
    out: Dict[str, float] = {}
    for metric in (record.get("metrics") or {}).get("metrics", []):
        name = metric.get("name", "?")
        if metric.get("type") == "histogram":
            out[f"{name}.sum"] = metric.get("sum", 0)
            out[f"{name}.count"] = metric.get("count", 0)
            continue
        for sample in metric.get("samples", []):
            labels = sample.get("labels") or {}
            if labels:
                body = ",".join(f"{k}={v}"
                                for k, v in sorted(labels.items()))
                key = f"{name}{{{body}}}"
            else:
                key = name
            out[key] = sample.get("value", 0)
    return out


def diff_records(a: Dict, b: Dict) -> Dict:
    """Structured comparison of two ledger records: per-stage wall
    times and per-metric values, with deltas (b - a)."""

    def table(av: Dict[str, float], bv: Dict[str, float]) -> List[Dict]:
        rows = []
        for key in sorted(set(av) | set(bv)):
            x, y = av.get(key), bv.get(key)
            row = {"key": key, "a": x, "b": y}
            if x is not None and y is not None:
                row["delta"] = round(y - x, 3)
                if x:
                    row["ratio"] = round(y / x, 3)
            rows.append(row)
        return rows

    return {
        "a": {"run_id": a.get("run_id"), "command": a.get("command"),
              "wall_s": a.get("wall_s")},
        "b": {"run_id": b.get("run_id"), "command": b.get("command"),
              "wall_s": b.get("wall_s")},
        "stages_ms": table(a.get("stages") or {}, b.get("stages") or {}),
        "metrics": table(_metric_values(a), _metric_values(b)),
    }

"""Metrics registry: counters, gauges, histograms.

Instrument call sites look like::

    from ..telemetry import metrics
    metrics().counter("dse.cache.object_hits").inc()
    metrics().histogram("dse.group_size", buckets=(1, 2, 4, 8)).observe(n)

Instruments are memoized by name, accept optional ``**labels`` on
every sample, and export two ways: :meth:`MetricsRegistry.snapshot`
(versioned JSON, the run ledger's ``metrics`` section) and
:meth:`MetricsRegistry.render_prometheus` (the text exposition format,
ready for a future serving daemon's ``/metrics`` endpoint).

When telemetry is disabled the active registry is
:data:`NULL_METRICS`: ``counter()`` & co. return shared no-op
instrument singletons, so disabled instrumentation neither allocates
nor records.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

METRICS_SCHEMA = "repro.telemetry.metrics/v1"

#: Generic latency-ish bucket ladder (seconds or counts alike).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                   10.0, 50.0, 100.0)


def _label_key(labels: Dict[str, object]) -> Tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared machinery: per-label-set sample storage."""

    kind = "instrument"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: Dict[Tuple, float] = {}

    def samples(self) -> List[Dict[str, object]]:
        with self._lock:
            items = sorted(self._samples.items())
        return [{"labels": dict(key), "value": value}
                for key, value in items]

    def to_json(self) -> Dict[str, object]:
        return {"name": self.name, "type": self.kind,
                "help": self.help, "samples": self.samples()}


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, n: float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + n

    def value(self, **labels) -> float:
        return self._samples.get(_label_key(labels), 0)


class Gauge(_Instrument):
    """Point-in-time value (workers alive, queue depth...)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = value

    def inc(self, n: float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + n

    def dec(self, n: float = 1, **labels) -> None:
        self.inc(-n, **labels)

    def value(self, **labels) -> float:
        return self._samples.get(_label_key(labels), 0)


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics: each bucket
    counts observations ``<= le``, plus ``+Inf``, ``sum`` and
    ``count``)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, le in enumerate(self.buckets):
                if value <= le:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1

    def to_json(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            total, sum_ = self._count, self._sum
        cumulative = []
        running = 0
        for le, n in zip(self.buckets, counts):
            running += n
            cumulative.append({"le": le, "count": running})
        cumulative.append({"le": "+Inf", "count": total})
        return {"name": self.name, "type": self.kind, "help": self.help,
                "buckets": cumulative, "sum": round(sum_, 6),
                "count": total}


class MetricsRegistry:
    """Name-memoized instrument factory + exporters."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name, help,
                                                    **kwargs)
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{inst.kind}, not {cls.kind}")
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    # -- exports -----------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Versioned JSON document of every instrument and sample."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {
            "schema": METRICS_SCHEMA,
            "metrics": [inst.to_json() for _, inst in instruments],
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            instruments = sorted(self._instruments.items())
        for _, inst in instruments:
            pname = "repro_" + inst.name.replace(".", "_")
            if inst.help:
                lines.append(f"# HELP {pname} {inst.help}")
            lines.append(f"# TYPE {pname} {inst.kind}")
            if isinstance(inst, Histogram):
                doc = inst.to_json()
                for bucket in doc["buckets"]:
                    lines.append(f'{pname}_bucket{{le="{bucket["le"]}"}}'
                                 f' {bucket["count"]}')
                lines.append(f"{pname}_sum {doc['sum']}")
                lines.append(f"{pname}_count {doc['count']}")
                continue
            for sample in inst.samples():
                labels = sample["labels"]
                if labels:
                    body = ",".join(f'{k}="{v}"'
                                    for k, v in sorted(labels.items()))
                    lines.append(f"{pname}{{{body}}} {sample['value']}")
                else:
                    lines.append(f"{pname} {sample['value']}")
        return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()
    kind = "null"

    def inc(self, n: float = 1, **labels) -> None:
        pass

    def dec(self, n: float = 1, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def value(self, **labels) -> float:
        return 0

    def samples(self) -> List:
        return []


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled-telemetry registry: hands out the shared no-op
    instrument and records nothing."""

    enabled = False

    def counter(self, _name: str, help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, _name: str, help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, _name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def get(self, _name: str) -> None:
        return None

    def snapshot(self) -> Dict[str, object]:
        return {"schema": METRICS_SCHEMA, "metrics": []}

    def render_prometheus(self) -> str:
        return ""


NULL_METRICS = NullMetrics()

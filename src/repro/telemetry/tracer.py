"""Nested wall-clock span tracing.

A :class:`Span` is one timed region of the toolflow — a Pipeline
stage, a uopt pass, a simulation run.  Spans nest: the tracer keeps a
per-thread stack so ``with tracer.span("pipeline.optimize"): ...``
parents every span opened inside it, across the whole call tree, and
ids stay unique across threads *and* processes (pid + monotonic
counter).

Cost model: everything here is *per stage*, never per simulated
cycle.  When telemetry is disabled the active tracer is
:data:`NULL_TRACER`, whose ``span()`` returns the shared
:data:`NULL_SPAN` singleton — no allocation, no lock, no record —
so instrumented call sites are safe to leave in hot-ish code.

Spans export two ways:

* :meth:`Tracer.to_json` — the flat span list (ledger / tests);
* :meth:`Tracer.perfetto_trace` — Chrome/Perfetto ``traceEvents``;
  cycle-level simulation traces registered via the runtime
  (:func:`repro.telemetry.attach_sim_trace`) are scaled into their
  owning ``sim.run`` span's wall-clock window so pipeline stages and
  sim stall events share one timeline.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional

TRACE_SCHEMA = "repro.telemetry.trace/v1"


class Span:
    """One timed region; also its own context manager."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "category",
                 "start", "end", "attrs", "thread", "pid")

    def __init__(self, tracer: "Tracer", span_id: str,
                 parent_id: Optional[str], name: str, category: str,
                 attrs: Dict[str, object]):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.attrs = attrs
        self.thread = threading.get_ident()
        self.pid = os.getpid()
        self.start = time.perf_counter()
        self.end: Optional[float] = None

    # -- context manager --------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = type(exc).__name__
        self.tracer._finish(self)
        return False

    def set(self, **attrs) -> "Span":
        """Attach result attributes (cycles, hit counts...) mid-span."""
        self.attrs.update(attrs)
        return self

    # -- views -------------------------------------------------------------
    @property
    def wall_s(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def to_json(self) -> Dict[str, object]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "wall_ms": round(self.wall_s * 1e3, 3),
            "args": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (f"Span({self.name}, {self.wall_s * 1e3:.1f}ms, "
                f"cat={self.category})")


class _NullSpan:
    """Shared do-nothing span; identity-stable so disabled telemetry
    provably allocates nothing per call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        return False

    def set(self, **_attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects nested spans; thread-safe, one instance per run."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._spans: List[Span] = []
        #: perf_counter / wall-clock anchor pair: exports place span
        #: starts on the wall clock without calling time.time per span.
        self.t0 = time.perf_counter()
        self.wall0 = time.time()

    # -- recording ---------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str, category: str = "pipeline",
             **attrs) -> Span:
        """Open a span; close it via ``with`` (or ``__exit__``)."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span_id = f"{os.getpid():x}.{next(self._ids):x}"
        sp = Span(self, span_id, parent, name, category, attrs)
        stack.append(sp)
        return sp

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        if span in stack:               # tolerate out-of-order exits
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        with self._lock:
            self._spans.append(span)

    # -- views -------------------------------------------------------------
    def finished(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def stage_durations(self) -> Dict[str, float]:
        """``{name: wall_seconds}`` over *top-level* spans (repeated
        names accumulate) — the run ledger's stage table."""
        out: Dict[str, float] = {}
        for sp in self.finished():
            if sp.parent_id is None:
                out[sp.name] = out.get(sp.name, 0.0) + sp.wall_s
        return out

    def to_json(self, limit: int = 500) -> Dict[str, object]:
        spans = self.finished()
        dropped = max(0, len(spans) - limit)
        return {
            "schema": TRACE_SCHEMA,
            "spans": [sp.to_json() for sp in spans[:limit]],
            "dropped_spans": dropped,
        }

    # -- Perfetto export ---------------------------------------------------
    def _us(self, t: float) -> float:
        return (t - self.t0) * 1e6

    def perfetto_trace(self, sim_traces=()) -> Dict[str, object]:
        """Chrome/Perfetto ``traceEvents`` with pipeline spans and any
        registered cycle-level sim traces on one timeline.

        ``sim_traces`` is a sequence of ``(label, events, span,
        cycles)`` tuples (see :func:`repro.telemetry.attach_sim_trace`):
        each sim event's cycle is scaled into its owning span's
        wall-clock window, so a 40%-of-the-run stall episode renders
        as 40% of the simulate stage's width.
        """
        events = []
        for sp in self.finished():
            events.append({
                "name": sp.name, "cat": sp.category, "ph": "X",
                "pid": "pipeline", "tid": f"thread-{sp.thread:x}",
                "ts": round(self._us(sp.start), 3),
                "dur": round(self._us(sp.end) - self._us(sp.start), 3),
                "args": dict(sp.attrs),
            })
        for label, sim_events, span, cycles in sim_traces:
            if span.end is None:
                continue
            base = self._us(span.start)
            scale = (self._us(span.end) - base) / max(1, cycles)
            pid = f"sim:{label}"
            for ev in sim_events:
                args = dict(ev.get("args") or {})
                args["cycle"] = ev["cycle"]
                out = {
                    "name": args.get("cause", ev["name"]),
                    "cat": f"sim.{ev['cat']}",
                    "pid": pid, "tid": ev["name"],
                    "ts": round(base + ev["cycle"] * scale, 3),
                    "args": args,
                }
                if ev.get("dur"):
                    out["ph"] = "X"
                    out["dur"] = round(ev["dur"] * scale, 3)
                else:
                    out["ph"] = "i"
                    out["s"] = "t"
                events.append(out)
        events.sort(key=lambda e: e["ts"])
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA,
                "wall_epoch": self.wall0,
                "note": "sim:* tracks are cycle events scaled into "
                        "their sim.run span's wall-clock window",
            },
        }


class NullTracer:
    """Disabled-telemetry tracer: every operation is a no-op."""

    enabled = False

    def span(self, _name: str, category: str = "pipeline",
             **_attrs) -> _NullSpan:
        return NULL_SPAN

    def finished(self) -> List[Span]:
        return []

    def stage_durations(self) -> Dict[str, float]:
        return {}

    def to_json(self, limit: int = 500) -> Dict[str, object]:
        return {"schema": TRACE_SCHEMA, "spans": [], "dropped_spans": 0}

    def perfetto_trace(self, sim_traces=()) -> Dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms",
                "otherData": {"schema": TRACE_SCHEMA}}


NULL_TRACER = NullTracer()

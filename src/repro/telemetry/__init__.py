"""Cross-layer telemetry: span tracing, metrics, and the run ledger.

The toolchain's observability substrate (DESIGN.md section 10).  Three
cooperating pieces:

* :mod:`repro.telemetry.tracer` — nested wall-clock spans over the
  Pipeline stages, uopt passes, simulation runs, and DSE sweeps;
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms
  (cache hit rates, batch modes, fuzz verdicts) with Prometheus-text
  and JSON exports;
* :mod:`repro.telemetry.ledger` — a persistent JSONL journal under
  ``.repro/runs/`` appending one atomic record per CLI invocation,
  browsable with ``repro runs list|show|diff``.

This module owns the **process-global switch**.  Telemetry is *off*
by default: :func:`tracer` / :func:`metrics` return shared null
singletons whose every method is a no-op, so instrumented call sites
cost one function call and nothing else.  ``repro --telemetry ...``
(or ``REPRO_TELEMETRY=1``) flips the switch for one process via
:func:`enable`.

Instrumentation naming scheme (keep it grep-able):

* spans — ``pipeline.<stage>`` for Pipeline stages (``frontend``,
  ``optimize``, ``simulate``, ``verify``, ``synthesize``),
  ``opt.<pass>`` per uopt pass, ``sim.run`` / ``sim.batch`` per
  simulation, ``dse.explore`` / ``fuzz.run`` for sweep drivers;
* metrics — dotted ``<layer>.<noun>_<verb-or-unit>``:
  ``dse.cache.object_hits``, ``sim.batch.runs``,
  ``sim.compile.memo_hits``, ``fuzz.violations``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .ledger import (  # noqa: F401
    LEDGER_SCHEMA,
    RECORD_KEYS,
    RunLedger,
    build_record,
    diff_records,
    new_run_id,
    runs_dir,
)
from .metrics import (  # noqa: F401
    METRICS_SCHEMA,
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
)
from .tracer import (  # noqa: F401
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Span,
    Tracer,
)

ENV_FLAG = "REPRO_TELEMETRY"


class _State:
    """Process-global telemetry state (one slot, swapped atomically)."""

    __slots__ = ("tracer", "metrics", "enabled", "sim_traces",
                 "fingerprints", "annotations")

    def __init__(self):
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self.enabled = False
        #: ``(label, events, span, cycles)`` tuples for the unified
        #: Perfetto export (see Tracer.perfetto_trace).
        self.sim_traces: List[Tuple] = []
        self.fingerprints: List[str] = []
        self.annotations: Dict[str, object] = {}


_STATE = _State()


def enabled() -> bool:
    return _STATE.enabled


def env_requests_telemetry() -> bool:
    return os.environ.get(ENV_FLAG, "") not in ("", "0", "false", "off")


def tracer():
    """The active tracer (a no-op singleton while disabled)."""
    return _STATE.tracer


def metrics():
    """The active metrics registry (a no-op singleton while disabled)."""
    return _STATE.metrics


def enable(fresh: bool = True) -> Tuple[Tracer, MetricsRegistry]:
    """Turn telemetry on for this process; returns (tracer, metrics).

    ``fresh=False`` keeps an already-enabled session's collectors
    instead of replacing them (idempotent re-enable).
    """
    if _STATE.enabled and not fresh:
        return _STATE.tracer, _STATE.metrics
    _STATE.tracer = Tracer()
    _STATE.metrics = MetricsRegistry()
    _STATE.sim_traces = []
    _STATE.fingerprints = []
    _STATE.annotations = {}
    _STATE.enabled = True
    return _STATE.tracer, _STATE.metrics


def disable() -> None:
    """Back to the zero-cost null collectors."""
    _STATE.tracer = NULL_TRACER
    _STATE.metrics = NULL_METRICS
    _STATE.sim_traces = []
    _STATE.fingerprints = []
    _STATE.annotations = {}
    _STATE.enabled = False


# -- run-level context -------------------------------------------------------

def annotate(key: str, value) -> None:
    """Attach one run-level fact (workload name, kernel, point count)
    to the eventual ledger record.  No-op while disabled."""
    if _STATE.enabled:
        _STATE.annotations[str(key)] = value


def note_fingerprint(fingerprint: str) -> None:
    """Record a circuit fingerprint this run touched (deduplicated,
    order-preserving)."""
    if _STATE.enabled and fingerprint and \
            fingerprint not in _STATE.fingerprints:
        _STATE.fingerprints.append(fingerprint)


def attach_sim_trace(label: str, observer, span, cycles: int) -> None:
    """Register one simulation's cycle-level trace for the unified
    Perfetto export.  ``observer`` is a
    :class:`repro.sim.observe.Observability` with tracing on; its ring
    is snapshotted now (the observer may be reused or dropped later)."""
    if not _STATE.enabled:
        return
    _STATE.sim_traces.append((label, observer.events(), span, cycles))


def perfetto_trace() -> Dict:
    """Unified trace document: pipeline spans + registered sim traces."""
    return _STATE.tracer.perfetto_trace(_STATE.sim_traces)


def write_perfetto(path: str) -> None:
    import json
    with open(path, "w") as fh:
        json.dump(perfetto_trace(), fh)


def collect_record(*, command: str, argv: List[str], status: str,
                   exit_code: int, wall_s: float, started: float,
                   error: Optional[Dict] = None) -> Dict:
    """Build the ledger record for the current telemetry session."""
    tr = _STATE.tracer
    spans = [sp.to_json() for sp in tr.finished()[:500]]
    passes = [
        {"pass": sp.name.split(".", 1)[1] if "." in sp.name
         else sp.name,
         "wall_ms": round(sp.wall_s * 1e3, 3),
         **{k: v for k, v in sp.attrs.items()
            if isinstance(v, (int, float, bool, str))}}
        for sp in tr.finished() if sp.category == "opt"
    ]
    return build_record(
        run_id=new_run_id(), command=command, argv=argv,
        status=status, exit_code=exit_code, wall_s=wall_s,
        started=started, stages=tr.stage_durations(), spans=spans,
        passes=passes, fingerprints=list(_STATE.fingerprints),
        annotations=dict(_STATE.annotations),
        metrics=_STATE.metrics.snapshot(), error=error)

"""Parallel design-space exploration over (pass-pipeline x SimParams)
points.

The paper's pitch is that uIR turns microarchitecture into a
*searchable* space; this engine does the searching at scale:

* points come from a :class:`~repro.dse.space.DesignSpace` (grid or
  seeded random sample) and are mapped to pass-spec strings by a
  pipeline template — only picklable primitives ever cross process
  boundaries;
* evaluation fans out over a ``ProcessPoolExecutor``; each worker
  drives the ordinary :class:`repro.api.Pipeline` facade on the
  **canonical form** of the optimized circuit (see
  :func:`repro.core.serialize.canonical_circuit` — canonical-form
  execution is what makes content-addressed caching sound);
* results land in a persistent :class:`~repro.dse.cache.ResultCache`;
  warm re-runs are served from the request index without touching the
  front-end, and overlapping sweeps share objects by content;
* a failing point (deadlock, watchdog timeout, pass error, behavior
  mismatch...) degrades to a recorded failure carrying its full
  error document — exit-code family, message, and provenance-aware
  diagnostics — and the sweep continues;
* surviving points feed an n-objective Pareto-frontier extraction
  over latency / area / power metrics.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from .. import telemetry
from ..errors import ReproError, error_document
from ..opt import parse_pass_specs, spec_to_string
from ..sim import SimParams
from ..workloads import get_workload
from .cache import (
    COUNT_KEYS,
    ResultCache,
    content_key,
    request_key,
    sim_key_dict,
)
from .space import DesignSpace, render_pipeline

EXPLORE_SCHEMA = "repro.explore/v1"

#: Metrics a point exposes for objectives / reporting, all
#: minimized.  Extraction is from the cached JSON documents so cache
#: hits and fresh runs are indistinguishable.
METRICS = ("time_us", "cycles", "alms", "regs", "dsps", "fpga_mw",
           "asic_area_kum2", "asic_mw")


@dataclass
class PointResult:
    """Outcome of one design point (fresh, cached, or failed)."""

    index: int
    params: Dict[str, object]
    pass_spec: Optional[str]
    status: str = "failed"              # "ok" | "failed"
    #: "fresh" | "cache" (content hit in a worker) | "cache-index"
    #: (request hit in the parent; front-end never ran).
    source: str = "fresh"
    key: str = ""                       # content key, when known
    fingerprint: str = ""               # canonical circuit fingerprint
    cycles: Optional[int] = None
    verified: Optional[bool] = None
    stats: Optional[Dict] = None        # SimStats.to_json() document
    synth: Optional[Dict] = None        # SynthesisReport.to_json()
    error: Optional[Dict] = None        # repro.errors.error_document
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def cached(self) -> bool:
        return self.source != "fresh"

    def metric(self, name: str) -> Optional[float]:
        if not self.ok:
            return None
        if name == "cycles":
            return float(self.cycles)
        if name == "time_us":
            return self.cycles / self.synth["fpga_mhz"]
        if name in ("alms", "regs", "dsps", "fpga_mw",
                    "asic_area_kum2", "asic_mw"):
            return float(self.synth[name])
        raise ReproError(
            f"unknown objective {name!r}; known: {', '.join(METRICS)}")

    def to_json(self) -> Dict:
        doc: Dict = {
            "index": self.index,
            "params": dict(self.params),
            "passes": self.pass_spec,
            "status": self.status,
            "source": self.source,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "wall_s": round(self.wall_s, 4),
        }
        if self.ok:
            doc.update(cycles=self.cycles, verified=self.verified,
                       time_us=self.metric("time_us"),
                       alms=self.synth["alms"],
                       fpga_mhz=self.synth["fpga_mhz"],
                       fpga_mw=self.synth["fpga_mw"],
                       stats=self.stats, synth=self.synth)
        else:
            doc["error"] = self.error
        return doc

    def describe(self) -> str:
        label = " ".join(f"{k}={v}" for k, v in self.params.items())
        if self.ok:
            return (f"[{self.index}] {label}: {self.cycles} cyc, "
                    f"{self.metric('time_us'):.2f} us, "
                    f"{self.synth['alms']} ALMs ({self.source})")
        err = (self.error or {}).get("error", "?")
        return f"[{self.index}] {label}: FAILED[{err}]"


def pareto_frontier(points: Sequence[PointResult],
                    objectives: Sequence[str]) -> List[int]:
    """Indices of non-dominated ok points, sorted by the first
    objective.  All objectives are minimized."""
    rows = [(p.index, [p.metric(o) for o in objectives])
            for p in points if p.ok]
    front: List[tuple] = []
    for index, vec in rows:
        dominated = False
        for _, other in rows:
            if other is vec:
                continue
            if all(o <= v for o, v in zip(other, vec)) and \
                    any(o < v for o, v in zip(other, vec)):
                dominated = True
                break
        if not dominated:
            front.append((index, vec))
    front.sort(key=lambda item: item[1])
    return [index for index, _ in front]


@dataclass
class ExploreReport:
    """Everything one sweep produced, JSON-able."""

    workload: str
    variant: str
    template: Optional[str]
    objectives: List[str]
    sim: Dict[str, object]
    workers: int
    points: List[PointResult] = field(default_factory=list)
    wall_s: float = 0.0
    #: Aggregated :attr:`ResultCache.counts` over the parent process
    #: and every worker (empty when the sweep ran uncached).
    cache: Dict[str, int] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        pts = self.points
        return {
            "points": len(pts),
            "ok": sum(p.ok for p in pts),
            "failed": sum(not p.ok for p in pts),
            "fresh": sum(p.source == "fresh" and p.ok for p in pts),
            "cache_hits": sum(p.cached and p.ok for p in pts),
        }

    @property
    def pareto(self) -> List[int]:
        return pareto_frontier(self.points, self.objectives)

    def point(self, index: int) -> PointResult:
        for p in self.points:
            if p.index == index:
                return p
        raise ReproError(f"no point with index {index}")

    def to_json(self) -> Dict:
        return {
            "schema": EXPLORE_SCHEMA,
            "workload": self.workload,
            "variant": self.variant,
            "template": self.template,
            "objectives": list(self.objectives),
            "sim": dict(self.sim),
            "workers": self.workers,
            "wall_s": round(self.wall_s, 4),
            "counts": self.counts,
            "cache": dict(self.cache),
            "pareto": self.pareto,
            "points": [p.to_json() for p in self.points],
        }

    def summary(self) -> str:
        c = self.counts
        line = (f"{self.workload}: {c['points']} points "
                f"({c['ok']} ok, {c['failed']} failed, "
                f"{c['cache_hits']} cached, {c['fresh']} fresh) "
                f"in {self.wall_s:.2f}s with {self.workers} worker(s); "
                f"pareto: {len(self.pareto)} point(s)")
        if self.cache:
            k = self.cache
            line += (f"; cache: {k.get('object_hits', 0)} obj hits / "
                     f"{k.get('object_misses', 0)} misses / "
                     f"{k.get('object_corrupt', 0)} corrupt, "
                     f"{k.get('index_hits', 0)} index hits")
        return line


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _evaluate_group(payloads: Sequence[Dict]) -> List[Dict]:
    """Evaluate a group of points sharing one pass spec in a worker.

    Batched evaluation: every payload in the group maps to the *same*
    canonical circuit (pass spec fixed, only ``sim.*`` axes vary), so
    the front-end — MiniC -> uIR -> uopt -> canonicalization ->
    compiled-kernel specialization — runs ONCE for the whole group and
    per-point cost reduces to simulation + synthesis.  Single-point
    groups behave exactly like the old per-point worker.

    Returns one plain dict per payload (never raises): ``{"index",
    "ok", "source", "key", "fingerprint", "doc" | "error", "wall_s"}``.
    """
    t0 = time.perf_counter()
    outs: List[Dict] = [
        {"index": p["index"], "ok": False, "source": "fresh",
         "key": "", "fingerprint": "", "wall_s": 0.0}
        for p in payloads]
    first = payloads[0]
    try:
        from ..api import Pipeline
        from ..core.serialize import canonical_circuit, \
            circuit_fingerprint

        w = get_workload(first["workload"])
        variant = first["variant"]
        args = list(w.args_for(variant))
        pipe = Pipeline(w, variant=variant,
                        name=f"{w.name}_dse{first['index']}")
        pipe.optimize(first["pass_spec"])
        canon = canonical_circuit(pipe.circuit)
        fingerprint = circuit_fingerprint(canon)
        if any(p["sim"].get("kernel") == "compiled" for p in payloads):
            # Seed the compiled-artifact cache under the canonical
            # fingerprint we already paid for, so simulate() reuses it
            # instead of re-fingerprinting the circuit.
            from ..sim.compile import precompile
            precompile(canon, fingerprint)
    except ReproError as exc:
        doc = error_document(exc)
        share = (time.perf_counter() - t0) / len(payloads)
        for out in outs:
            out.update(error=dict(doc), wall_s=share)
        return outs
    except Exception as exc:  # noqa: BLE001 - sweep must survive
        doc = {"error": type(exc).__name__, "message": str(exc),
               "exit_code": 1}
        share = (time.perf_counter() - t0) / len(payloads)
        for out in outs:
            out.update(error=dict(doc), wall_s=share)
        return outs
    front_share = (time.perf_counter() - t0) / len(payloads)

    cache = ResultCache(first["cache_root"]) \
        if first.get("cache_root") else None
    for payload, out in zip(payloads, outs):
        t1 = time.perf_counter()
        out["fingerprint"] = fingerprint
        try:
            ckey = content_key(fingerprint, w.name, variant, args,
                               payload["sim"])
            out["key"] = ckey
            if cache is not None:
                doc = cache.get(ckey)
                if doc is not None:
                    out.update(ok=True, source="cache", doc=doc,
                               wall_s=front_share
                               + time.perf_counter() - t1)
                    continue
            params = SimParams(
                wallclock_timeout=payload.get("wallclock_timeout"),
                **payload["sim"])
            run = Pipeline.from_circuit(canon, workload=w,
                                        variant=variant)
            run.pass_spec = payload["pass_spec"]
            ev = run.simulate(params,
                              check=payload.get("check", True)) \
                    .synthesize(name=w.name)
            doc = {
                "workload": w.name,
                "variant": variant,
                "passes": payload["pass_spec"],
                "fingerprint": fingerprint,
                "sim": payload["sim"],
                "cycles": ev.cycles,
                "results": list(ev.results),
                "verified": ev.verified,
                "stats": ev.stats.to_json(),
                "synth": ev.synth.to_json(),
            }
            if cache is not None:
                cache.put(ckey, doc)
            out.update(ok=True, doc=doc)
        except ReproError as exc:
            out["error"] = error_document(exc)
        except Exception as exc:  # noqa: BLE001 - sweep must survive
            out["error"] = {"error": type(exc).__name__,
                            "message": str(exc), "exit_code": 1}
        out["wall_s"] = front_share + time.perf_counter() - t1
    if cache is not None:
        # Ship the worker-local cache tallies home: metrics registries
        # don't cross process boundaries, so the coordinating parent
        # aggregates these into the explore report and telemetry.
        outs[-1]["cache_counts"] = dict(cache.counts)
    return outs


def _evaluate_point(payload: Dict) -> Dict:
    """Single-point compatibility wrapper over :func:`_evaluate_group`."""
    return _evaluate_group([payload])[0]


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

PipelineTemplate = Union[str, Callable[[Dict], str]]


def default_workers() -> int:
    return max(1, min(4, os.cpu_count() or 1))


def explore(workload, space: Union[DesignSpace, Iterable[Dict]], *,
            pipeline: PipelineTemplate,
            variant: str = "base",
            sim: Optional[SimParams] = None,
            workers: Optional[int] = None,
            cache: Union[None, str, ResultCache] = None,
            objectives: Sequence[str] = ("time_us", "alms"),
            check: bool = True,
            progress: Optional[Callable[[PointResult], None]] = None,
            ) -> ExploreReport:
    """Sweep ``space`` for ``workload`` and return the report.

    ``pipeline`` is a template string (see
    :func:`repro.dse.space.render_pipeline`) or a callable mapping a
    point's params to a pass-spec string.  ``cache`` is a directory
    path or :class:`ResultCache`; None disables caching.  ``workers``
    defaults to ``min(4, cpu_count)``; 0/1 evaluates serially
    in-process.
    """
    t0 = time.perf_counter()
    w = get_workload(workload)
    if variant != "base" and variant not in w.variants:
        raise ReproError(
            f"workload {w.name!r} has no variant {variant!r}")
    for objective in objectives:
        if objective not in METRICS:
            raise ReproError(f"unknown objective {objective!r}; "
                             f"known: {', '.join(METRICS)}")
    params_list = [dict(p) for p in space]
    if not params_list:
        raise ReproError("design space is empty")
    sim = sim or SimParams()
    if workers is None:
        workers = default_workers()
    if isinstance(cache, str):
        cache = ResultCache(cache)

    base_sim = sim_key_dict(sim)
    args = list(w.args_for(variant))
    results: Dict[int, PointResult] = {}
    pending: List[Dict] = []

    for index, params in enumerate(params_list):
        point = PointResult(index=index, params=params, pass_spec=None)
        sim_over = {str(k)[4:]: v for k, v in params.items()
                    if str(k).startswith("sim.")}
        point_sim = dict(base_sim, **sim_over)
        try:
            if callable(pipeline):
                raw_spec = pipeline(params)
            else:
                raw_spec = render_pipeline(pipeline, params)
            specs = parse_pass_specs(raw_spec)
            point.pass_spec = spec_to_string(specs)
            unknown = set(sim_over) - set(base_sim)
            if unknown:
                raise ReproError(
                    f"unknown sim.* axis(es): "
                    f"{', '.join(sorted(unknown))}; known: "
                    f"{', '.join(sorted(base_sim))}")
        except ReproError as exc:
            point.error = error_document(exc)
            results[index] = point
            if progress:
                progress(point)
            continue
        rkey = None
        if cache is not None:
            rkey = request_key(w.name, variant, point.pass_spec,
                               args, point_sim)
            doc = cache.lookup_request(rkey)
            if doc is not None:
                _apply_doc(point, doc, source="cache-index")
                results[index] = point
                if progress:
                    progress(point)
                continue
        pending.append({
            "index": index,
            "workload": w.name,
            "variant": variant,
            "pass_spec": point.pass_spec,
            "sim": point_sim,
            "wallclock_timeout": sim.wallclock_timeout,
            "check": check,
            "cache_root": cache.root if cache is not None else None,
            "_point": point,
            "_rkey": rkey,
        })

    cache_counts: Dict[str, int] = {k: 0 for k in COUNT_KEYS} \
        if cache is not None else {}

    def merge_counts(out: Dict) -> None:
        for key, n in (out.pop("cache_counts", None) or {}).items():
            cache_counts[key] = cache_counts.get(key, 0) + n

    def finish(payload: Dict, out: Dict) -> None:
        merge_counts(out)
        point: PointResult = payload["_point"]
        point.key = out.get("key", "")
        point.fingerprint = out.get("fingerprint", "")
        point.wall_s = out.get("wall_s", 0.0)
        if out["ok"]:
            _apply_doc(point, out["doc"], source=out["source"])
            if cache is not None and payload["_rkey"]:
                cache.record_request(payload["_rkey"], point.key)
        else:
            point.status = "failed"
            point.error = out.get("error")
        results[point.index] = point
        if progress:
            progress(point)

    # Batched dispatch: points sharing a pass spec share a canonical
    # circuit fingerprint, so they ship to workers as *groups* and the
    # front-end runs once per group (sim.*-only sweeps pay one
    # translation + optimization + specialization for the whole axis).
    # Each group is split into at most ``workers`` chunks so a single
    # large group still saturates the pool.
    by_spec: Dict[str, List[Dict]] = {}
    for payload in pending:
        by_spec.setdefault(payload["pass_spec"], []).append(payload)
    chunks: List[List[Dict]] = []
    for group in by_spec.values():
        ways = min(max(1, workers), len(group))
        chunks.extend([group[i::ways] for i in range(ways)])

    met = telemetry.metrics()
    group_sizes = met.histogram("dse.group_size",
                                buckets=(1, 2, 4, 8, 16, 32, 64))
    for chunk in chunks:
        group_sizes.observe(len(chunk))

    def sendable(chunk: List[Dict]) -> List[Dict]:
        return [{k: v for k, v in p.items() if not k.startswith("_")}
                for p in chunk]

    with telemetry.tracer().span("dse.explore", category="dse",
                                 workload=w.name,
                                 points=len(params_list),
                                 workers=workers) as _sp:
        if len(pending) <= 1 or workers <= 1:
            for chunk in chunks:
                for payload, out in zip(
                        chunk, _evaluate_group(sendable(chunk))):
                    finish(payload, out)
        else:
            pool_size = min(workers, len(chunks))
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                futures = {pool.submit(_evaluate_group,
                                       sendable(chunk)): chunk
                           for chunk in chunks}
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                    for future in done:
                        chunk = futures[future]
                        exc = future.exception()
                        if exc is not None:
                            # Worker process died (OOM, signal...): the
                            # chunk's points fail, the sweep continues.
                            met.counter("dse.worker_deaths").inc()
                            for payload in chunk:
                                finish(payload, {
                                    "index": payload["index"],
                                    "ok": False,
                                    "error": {
                                        "error": type(exc).__name__,
                                        "message": str(exc),
                                        "exit_code": 1}})
                        else:
                            for payload, out in zip(chunk,
                                                    future.result()):
                                finish(payload, out)
        if cache is not None:
            cache.save_index()
            for key, n in cache.counts.items():
                cache_counts[key] = cache_counts.get(key, 0) + n

        report = ExploreReport(
            workload=w.name, variant=variant,
            template=pipeline if isinstance(pipeline, str) else None,
            objectives=list(objectives), sim=base_sim, workers=workers,
            points=[results[i] for i in sorted(results)],
            wall_s=time.perf_counter() - t0,
            cache=dict(cache_counts) if cache is not None else {})
        c = report.counts
        _sp.set(ok=c["ok"], failed=c["failed"],
                cache_hits=c["cache_hits"], groups=len(chunks))

    if telemetry.enabled():
        met.counter("dse.points.dispatched").inc(len(pending))
        met.counter("dse.points.ok").inc(c["ok"])
        met.counter("dse.points.failed").inc(c["failed"])
        met.counter("dse.points.cached").inc(c["cache_hits"])
        for key, n in report.cache.items():
            met.counter(f"dse.cache.{key}").inc(n)
        for p in report.points:
            if p.fingerprint:
                telemetry.note_fingerprint(p.fingerprint)
    return report


def _apply_doc(point: PointResult, doc: Dict, source: str) -> None:
    point.status = "ok"
    point.source = source
    point.key = doc.get("key", point.key)
    point.fingerprint = doc.get("fingerprint", point.fingerprint)
    point.cycles = doc["cycles"]
    point.verified = doc.get("verified")
    point.stats = doc["stats"]
    point.synth = doc["synth"]

"""Parallel design-space exploration over (pass-pipeline x SimParams)
points.

The paper's pitch is that uIR turns microarchitecture into a
*searchable* space; this engine does the searching at scale — and
keeps searching when the environment misbehaves:

* points come from a :class:`~repro.dse.space.DesignSpace` (grid or
  seeded random sample) and are mapped to pass-spec strings by a
  pipeline template — only picklable primitives ever cross process
  boundaries;
* evaluation fans out over a ``ProcessPoolExecutor`` supervised for
  fault tolerance: a dying worker (OOM, signal) breaks the pool, so
  the supervisor respawns it and re-enqueues the in-flight points as
  isolated single-point chunks; transient failures (worker death,
  wall-clock watchdogs, ``OSError``) retry with exponential backoff +
  jitter up to :class:`RetryPolicy` limits, while deterministic error
  families (deadlock, LI violation, pass errors...) are never
  retried; a point implicated in **two** worker deaths is quarantined
  as poison (:class:`~repro.errors.PoisonPointError`, exit code 11);
* every sweep can write a :class:`~repro.dse.journal.SweepJournal` —
  an append-only JSONL record of planned points, TTL leases,
  completions and failures — so ``SIGINT``/``SIGTERM`` checkpoint the
  sweep instead of losing it (:class:`~repro.errors.SweepInterrupted`
  carries the ``--resume`` hint), :func:`resume` completes only the
  missing points with a byte-identical report, and multiple processes
  can shard one journal by claiming leases;
* results land in a persistent :class:`~repro.dse.cache.ResultCache`;
  warm re-runs are served from the request index without touching the
  front-end, and overlapping sweeps share objects by content;
* surviving points feed an n-objective Pareto-frontier extraction
  over latency / area / power metrics.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, \
    Union

from .. import telemetry
from ..errors import (
    PoisonPointError,
    ReproError,
    SweepInterrupted,
    error_document,
    error_family,
    family_for,
    unexpected_error_document,
)
from ..opt import parse_pass_specs, spec_to_string
from ..sim import SimParams
from ..workloads import get_workload
from .cache import (
    COUNT_KEYS,
    ResultCache,
    content_key,
    request_key,
    sim_key_dict,
)
from .journal import (
    DEFAULT_LEASE_TTL,
    DEFAULT_SWEEPS_DIR,
    PointState,
    SweepJournal,
    new_sweep_id,
    point_key,
    resolve_sweep,
)
from .space import DesignSpace, render_pipeline

EXPLORE_SCHEMA = "repro.explore/v1"

#: Metrics a point exposes for objectives / reporting, all
#: minimized.  Extraction is from the cached JSON documents so cache
#: hits and fresh runs are indistinguishable.
METRICS = ("time_us", "cycles", "alms", "regs", "dsps", "fpga_mw",
           "asic_area_kum2", "asic_mw")

#: Durability counters an :class:`ExploreReport` always carries (all
#: zero for an uneventful sweep).
DURABILITY_KEYS = ("retries", "worker_deaths", "timeouts",
                   "quarantined", "lease_reclaims", "resumed")


@dataclass
class RetryPolicy:
    """How the supervisor retries transient point failures.

    ``max_attempts`` bounds total tries per point (1 = never retry);
    delays grow exponentially from ``base_delay`` up to ``max_delay``,
    each multiplied by a uniform jitter in ``[1 - jitter, 1 + jitter]``
    so respawned workers don't stampede."""

    max_attempts: int = 3
    base_delay: float = 0.25
    max_delay: float = 5.0
    jitter: float = 0.5

    def delay(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts are
        1-based; called with the attempt that just failed)."""
        base = min(self.max_delay,
                   self.base_delay * (2.0 ** max(0, attempt - 1)))
        # Timing-only jitter: results are unaffected, so the shared
        # deterministic RNG (repro.util.rng) is deliberately not used.
        return base * random.uniform(1.0 - self.jitter,
                                     1.0 + self.jitter)


@dataclass
class PointResult:
    """Outcome of one design point (fresh, cached, resumed, or
    failed)."""

    index: int
    params: Dict[str, object]
    pass_spec: Optional[str]
    status: str = "failed"              # "ok" | "failed"
    #: "fresh" | "cache" (content hit in a worker) | "cache-index"
    #: (request hit in the parent; front-end never ran) | "journal"
    #: (restored from a sweep journal on resume).
    source: str = "fresh"
    key: str = ""                       # content key, when known
    fingerprint: str = ""               # canonical circuit fingerprint
    cycles: Optional[int] = None
    verified: Optional[bool] = None
    stats: Optional[Dict] = None        # SimStats.to_json() document
    synth: Optional[Dict] = None        # SynthesisReport.to_json()
    error: Optional[Dict] = None        # repro.errors.error_document
    wall_s: float = 0.0
    attempts: int = 1                   # evaluation tries, 1-based

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def cached(self) -> bool:
        return self.source in ("cache", "cache-index")

    @property
    def quarantined(self) -> bool:
        return (self.error or {}).get("error") == "PoisonPointError"

    def metric(self, name: str) -> Optional[float]:
        if not self.ok:
            return None
        if name == "cycles":
            return float(self.cycles)
        if name == "time_us":
            return self.cycles / self.synth["fpga_mhz"]
        if name in ("alms", "regs", "dsps", "fpga_mw",
                    "asic_area_kum2", "asic_mw"):
            return float(self.synth[name])
        raise ReproError(
            f"unknown objective {name!r}; known: {', '.join(METRICS)}")

    def to_json(self) -> Dict:
        doc: Dict = {
            "index": self.index,
            "params": dict(self.params),
            "passes": self.pass_spec,
            "status": self.status,
            "source": self.source,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "wall_s": round(self.wall_s, 4),
            "attempts": self.attempts,
        }
        if self.ok:
            doc.update(cycles=self.cycles, verified=self.verified,
                       time_us=self.metric("time_us"),
                       alms=self.synth["alms"],
                       fpga_mhz=self.synth["fpga_mhz"],
                       fpga_mw=self.synth["fpga_mw"],
                       stats=self.stats, synth=self.synth)
        else:
            doc["error"] = self.error
        return doc

    @classmethod
    def from_json(cls, doc: Dict) -> "PointResult":
        """Rebuild a point from its :meth:`to_json` document (used by
        journal restores — a resumed point is byte-identical to the
        run that produced it)."""
        point = cls(index=doc["index"],
                    params=dict(doc.get("params") or {}),
                    pass_spec=doc.get("passes"))
        point.status = doc.get("status", "failed")
        point.source = doc.get("source", "fresh")
        point.key = doc.get("key", "")
        point.fingerprint = doc.get("fingerprint", "")
        point.wall_s = doc.get("wall_s", 0.0)
        point.attempts = doc.get("attempts", 1)
        if point.ok:
            point.cycles = doc["cycles"]
            point.verified = doc.get("verified")
            point.stats = doc.get("stats")
            point.synth = doc.get("synth")
        else:
            point.error = doc.get("error")
        return point

    def describe(self) -> str:
        label = " ".join(f"{k}={v}" for k, v in self.params.items())
        if self.ok:
            return (f"[{self.index}] {label}: {self.cycles} cyc, "
                    f"{self.metric('time_us'):.2f} us, "
                    f"{self.synth['alms']} ALMs ({self.source})")
        err = (self.error or {}).get("error", "?")
        tag = "QUARANTINED" if self.quarantined else "FAILED"
        retry = f" after {self.attempts} attempts" \
            if self.attempts > 1 else ""
        return f"[{self.index}] {label}: {tag}[{err}]{retry}"


def pareto_frontier(points: Sequence[PointResult],
                    objectives: Sequence[str]) -> List[int]:
    """Indices of non-dominated ok points, sorted by the first
    objective.  All objectives are minimized."""
    rows = [(p.index, [p.metric(o) for o in objectives])
            for p in points if p.ok]
    front: List[tuple] = []
    for index, vec in rows:
        dominated = False
        for _, other in rows:
            if other is vec:
                continue
            if all(o <= v for o, v in zip(other, vec)) and \
                    any(o < v for o, v in zip(other, vec)):
                dominated = True
                break
        if not dominated:
            front.append((index, vec))
    front.sort(key=lambda item: item[1])
    return [index for index, _ in front]


@dataclass
class ExploreReport:
    """Everything one sweep produced, JSON-able."""

    workload: str
    variant: str
    template: Optional[str]
    objectives: List[str]
    sim: Dict[str, object]
    workers: int
    points: List[PointResult] = field(default_factory=list)
    wall_s: float = 0.0
    #: Aggregated :attr:`ResultCache.counts` over the parent process
    #: and every worker (empty when the sweep ran uncached).
    cache: Dict[str, int] = field(default_factory=dict)
    #: Sweep-journal id when the sweep was journaled ("" otherwise).
    sweep_id: str = ""
    #: Fault-tolerance counters (see :data:`DURABILITY_KEYS`).
    durability: Dict[str, int] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        pts = self.points
        return {
            "points": len(pts),
            "ok": sum(p.ok for p in pts),
            "failed": sum(not p.ok for p in pts),
            "fresh": sum(p.source == "fresh" and p.ok for p in pts),
            "cache_hits": sum(p.cached and p.ok for p in pts),
            "resumed": sum(p.source == "journal" for p in pts),
            "quarantined": sum(p.quarantined for p in pts),
        }

    @property
    def pareto(self) -> List[int]:
        return pareto_frontier(self.points, self.objectives)

    def point(self, index: int) -> PointResult:
        for p in self.points:
            if p.index == index:
                return p
        raise ReproError(f"no point with index {index}")

    def to_json(self) -> Dict:
        return {
            "schema": EXPLORE_SCHEMA,
            "workload": self.workload,
            "variant": self.variant,
            "template": self.template,
            "objectives": list(self.objectives),
            "sim": dict(self.sim),
            "workers": self.workers,
            "wall_s": round(self.wall_s, 4),
            "counts": self.counts,
            "cache": dict(self.cache),
            "sweep_id": self.sweep_id,
            "durability": dict(self.durability),
            "pareto": self.pareto,
            "points": [p.to_json() for p in self.points],
        }

    def summary(self) -> str:
        c = self.counts
        line = (f"{self.workload}: {c['points']} points "
                f"({c['ok']} ok, {c['failed']} failed, "
                f"{c['cache_hits']} cached, {c['fresh']} fresh) "
                f"in {self.wall_s:.2f}s with {self.workers} worker(s); "
                f"pareto: {len(self.pareto)} point(s)")
        if self.cache:
            k = self.cache
            line += (f"; cache: {k.get('object_hits', 0)} obj hits / "
                     f"{k.get('object_misses', 0)} misses / "
                     f"{k.get('object_corrupt', 0)} corrupt, "
                     f"{k.get('index_hits', 0)} index hits")
        d = self.durability
        if d and any(d.values()):
            line += ("; durability: "
                     + ", ".join(f"{v} {k.replace('_', ' ')}"
                                 for k, v in d.items() if v))
        if self.sweep_id:
            line += f"; sweep {self.sweep_id}"
        return line


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Test/CI-only chaos injection: when the environment variable
#: ``REPRO_DSE_CHAOS`` holds ``{"kill_point": {"index": N,
#: "flag": PATH}}``, a worker evaluating point N SIGKILLs itself —
#: once if ``flag`` is given (the flag file marks the kill as spent,
#: so the retry survives), on every attempt otherwise (a poison
#: point).  ``{"hang_point": {"index": N, "seconds": S, "flag":
#: PATH}}`` sleeps instead of killing, to exercise the supervisor's
#: per-point deadline.  This is how the failure-injection tests and
#: the CI chaos job exercise the supervisor without patching worker
#: internals.
CHAOS_ENV = "REPRO_DSE_CHAOS"


def _spend_flag(flag: Optional[str]) -> bool:
    """True if the fault should fire (no flag, or flag not yet
    spent); creating the flag marks it spent for later attempts."""
    if not flag:
        return True
    if os.path.exists(flag):
        return False
    with open(flag, "w"):
        pass
    return True


def _maybe_chaos(index: int) -> None:
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return
    try:
        doc = json.loads(spec)
    except ValueError:
        return
    hang = doc.get("hang_point") or {}
    if hang.get("index") == index and _spend_flag(hang.get("flag")):
        time.sleep(float(hang.get("seconds", 3600)))
    kill = doc.get("kill_point") or {}
    if kill.get("index") == index and _spend_flag(kill.get("flag")):
        os.kill(os.getpid(), signal.SIGKILL)


def _evaluate_group(payloads: Sequence[Dict]) -> List[Dict]:
    """Evaluate a group of points sharing one pass spec in a worker.

    Batched evaluation: every payload in the group maps to the *same*
    canonical circuit (pass spec fixed, only ``sim.*`` axes vary), so
    the front-end — MiniC -> uIR -> uopt -> canonicalization ->
    compiled-kernel specialization — runs ONCE for the whole group and
    per-point cost reduces to simulation + synthesis.  Single-point
    groups behave exactly like the old per-point worker.

    Returns one plain dict per payload (never raises): ``{"index",
    "ok", "source", "key", "fingerprint", "doc" | "error", "wall_s"}``.
    Error documents always carry a retry ``family`` and — for
    unexpected exceptions — the traceback tail, so the supervisor can
    classify them and ``repro sweeps show`` can display them.
    """
    t0 = time.perf_counter()
    outs: List[Dict] = [
        {"index": p["index"], "ok": False, "source": "fresh",
         "key": "", "fingerprint": "", "wall_s": 0.0}
        for p in payloads]
    first = payloads[0]
    try:
        from ..api import Pipeline
        from ..core.serialize import canonical_circuit, \
            circuit_fingerprint

        w = get_workload(first["workload"])
        variant = first["variant"]
        args = list(w.args_for(variant))
        pipe = Pipeline(w, variant=variant,
                        name=f"{w.name}_dse{first['index']}")
        pipe.optimize(first["pass_spec"])
        canon = canonical_circuit(pipe.circuit)
        fingerprint = circuit_fingerprint(canon)
        if any(p["sim"].get("kernel") == "compiled" for p in payloads):
            # Seed the compiled-artifact cache under the canonical
            # fingerprint we already paid for, so simulate() reuses it
            # instead of re-fingerprinting the circuit.
            from ..sim.compile import precompile
            precompile(canon, fingerprint)
    except ReproError as exc:
        doc = error_document(exc)
        doc["family"] = family_for(exc)
        share = (time.perf_counter() - t0) / len(payloads)
        for out in outs:
            out.update(error=dict(doc), wall_s=share)
        return outs
    except Exception as exc:  # noqa: BLE001 - sweep must survive
        doc = unexpected_error_document(exc)
        share = (time.perf_counter() - t0) / len(payloads)
        for out in outs:
            out.update(error=dict(doc), wall_s=share)
        return outs
    front_share = (time.perf_counter() - t0) / len(payloads)

    cache = ResultCache(first["cache_root"]) \
        if first.get("cache_root") else None
    for payload, out in zip(payloads, outs):
        t1 = time.perf_counter()
        _maybe_chaos(payload["index"])
        out["fingerprint"] = fingerprint
        try:
            ckey = content_key(fingerprint, w.name, variant, args,
                               payload["sim"])
            out["key"] = ckey
            if cache is not None:
                doc = cache.get(ckey)
                if doc is not None:
                    out.update(ok=True, source="cache", doc=doc,
                               wall_s=front_share
                               + time.perf_counter() - t1)
                    continue
            params = SimParams(
                wallclock_timeout=payload.get("wallclock_timeout"),
                **payload["sim"])
            run = Pipeline.from_circuit(canon, workload=w,
                                        variant=variant)
            run.pass_spec = payload["pass_spec"]
            ev = run.simulate(params,
                              check=payload.get("check", True)) \
                    .synthesize(name=w.name)
            doc = {
                "workload": w.name,
                "variant": variant,
                "passes": payload["pass_spec"],
                "fingerprint": fingerprint,
                "sim": payload["sim"],
                "cycles": ev.cycles,
                "results": list(ev.results),
                "verified": ev.verified,
                "stats": ev.stats.to_json(),
                "synth": ev.synth.to_json(),
            }
            if cache is not None:
                cache.put(ckey, doc)
            out.update(ok=True, doc=doc)
        except ReproError as exc:
            doc = error_document(exc)
            doc["family"] = family_for(exc)
            out["error"] = doc
        except Exception as exc:  # noqa: BLE001 - sweep must survive
            out["error"] = unexpected_error_document(exc)
        out["wall_s"] = front_share + time.perf_counter() - t1
    if cache is not None:
        # Ship the worker-local cache tallies home: metrics registries
        # don't cross process boundaries, so the coordinating parent
        # aggregates these into the explore report and telemetry.
        outs[-1]["cache_counts"] = dict(cache.counts)
    return outs


def _evaluate_point(payload: Dict) -> Dict:
    """Single-point compatibility wrapper over :func:`_evaluate_group`."""
    return _evaluate_group([payload])[0]


# ---------------------------------------------------------------------------
# Parent side: the sweep supervisor
# ---------------------------------------------------------------------------

PipelineTemplate = Union[str, Callable[[Dict], str]]


def default_workers() -> int:
    return max(1, min(4, os.cpu_count() or 1))


def _sendable(payloads: List[Dict]) -> List[Dict]:
    return [{k: v for k, v in p.items() if not k.startswith("_")}
            for p in payloads]


class _Chunk:
    """A unit of dispatch: payloads sharing one pass spec, plus the
    attempt this dispatch represents (1-based)."""

    __slots__ = ("payloads", "attempt", "suspect")

    def __init__(self, payloads: List[Dict], attempt: int = 1,
                 suspect: bool = False):
        self.payloads = payloads
        self.attempt = attempt
        self.suspect = suspect


class _Supervisor:
    """Drives chunks to completion through retries, worker deaths,
    supervisor timeouts, poison quarantine, journal leases, and
    SIGINT/SIGTERM checkpointing (see the module docstring for the
    policy; this class is the mechanism)."""

    def __init__(self, *, chunks: List[List[Dict]], workers: int,
                 retry: RetryPolicy, point_timeout: Optional[float],
                 journal: Optional[SweepJournal], lease_ttl: float,
                 settle_ok, settle_fail, restore, met):
        self.queue = deque(_Chunk(c) for c in chunks)
        self.delayed: List[tuple] = []   # (ready_monotonic, _Chunk)
        self.suspects: deque = deque()   # chunks run in isolation
        self.external: Dict[str, Dict] = {}  # leased to another process
        self.deaths: Dict[str, int] = {}
        self.workers = workers
        self.retry = retry
        self.point_timeout = point_timeout
        self.journal = journal
        self.lease_ttl = lease_ttl
        self.owner = f"{os.getpid()}-{os.urandom(2).hex()}"
        self.settle_ok = settle_ok       # (payload, out, attempts) -> doc
        self.settle_fail = settle_fail   # (payload, doc, attempts) -> doc
        self.restore = restore           # (payload, PointState) -> None
        self.met = met
        self.durability: Dict[str, int] = {k: 0 for k in
                                           DURABILITY_KEYS}
        self.interrupted: Optional[str] = None
        self._ext_poll = 0.0

    # -- signals -----------------------------------------------------------
    def install_signals(self):
        """Route SIGINT/SIGTERM to a checkpoint flag (main thread
        only; returns the restore map)."""
        if threading.current_thread() is not threading.main_thread():
            return {}
        saved = {}

        def handler(signum, _frame):
            try:
                self.interrupted = signal.Signals(signum).name
            except ValueError:
                self.interrupted = f"signal {signum}"

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                saved[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
        return saved

    def _check_interrupt(self, pool=None):
        if not self.interrupted:
            return
        if pool is not None:
            _kill_pool(pool)
        if self.journal is not None:
            self.journal.record_interrupt(self.interrupted)
        settled = self._settled_count()
        raise SweepInterrupted(
            self.journal.sweep_id if self.journal else "<unjournaled>",
            settled, self._total_points(), self.interrupted)

    def _settled_count(self) -> int:
        return self._settled

    # populated by run(); the engine passes totals in.
    _settled = 0
    _total = 0

    def _total_points(self) -> int:
        return self._total

    def note_settled(self) -> None:
        self._settled += 1

    # -- journal leases ----------------------------------------------------
    def _claim(self, chunk: _Chunk) -> List[Dict]:
        """Take journal leases for a chunk; returns the payloads this
        process actually owns (settled ones are restored, lost races
        and live foreign leases are parked as external)."""
        if self.journal is None:
            return chunk.payloads
        now = time.time()
        pre = self.journal.state()
        claimable: List[Dict] = []
        for payload in chunk.payloads:
            key = payload["_jkey"]
            ps = pre.points.get(key)
            if ps is None:
                claimable.append(payload)
                continue
            if ps.settled:
                self.restore(payload, ps)
                self.note_settled()
                continue
            owner = ps.lease_owner(now)
            if owner is not None and owner != self.owner:
                self.external[key] = payload
                continue
            if ps.claims and owner is None:
                self.durability["lease_reclaims"] += 1
                self.met.counter("dse.lease_reclaims").inc()
            claimable.append(payload)
        if not claimable:
            return []
        self.journal.claim([p["_jkey"] for p in claimable],
                           self.owner, self.lease_ttl)
        post = self.journal.state()
        mine: List[Dict] = []
        for payload in claimable:
            ps = post.points.get(payload["_jkey"])
            if ps is None or ps.lease_owner(now) == self.owner:
                mine.append(payload)
            else:
                self.external[payload["_jkey"]] = payload
        return mine

    def _poll_external(self) -> None:
        """Check points leased to other processes: restore the ones
        they settled; reclaim the ones whose lease expired."""
        if not self.external or self.journal is None:
            return
        now_m = time.monotonic()
        if now_m - self._ext_poll < 0.2:
            return
        self._ext_poll = now_m
        state = self.journal.state()
        now = time.time()
        for key, payload in list(self.external.items()):
            ps = state.points.get(key)
            if ps is None:
                del self.external[key]
                continue
            if ps.settled:
                self.restore(payload, ps)
                self.note_settled()
                del self.external[key]
            elif ps.lease_owner(now) is None:
                del self.external[key]
                self.durability["lease_reclaims"] += 1
                self.met.counter("dse.lease_reclaims").inc()
                self.queue.append(_Chunk([payload]))

    # -- settlement --------------------------------------------------------
    def _settle(self, chunk: _Chunk, payload: Dict, out: Dict) -> None:
        if out.get("ok"):
            doc = self.settle_ok(payload, out, chunk.attempt)
            if self.journal is not None:
                self.journal.record_done(payload["_jkey"], self.owner,
                                         doc)
            self.note_settled()
        else:
            self._settle_error(chunk, payload, out.get("error") or {})

    def _settle_error(self, chunk: _Chunk, payload: Dict,
                      doc: Dict) -> None:
        family = doc.get("family") or error_family(doc.get("error", ""))
        if family == "transient" and \
                chunk.attempt < self.retry.max_attempts:
            if self.journal is not None:
                self.journal.record_error(payload["_jkey"], self.owner,
                                          chunk.attempt, doc,
                                          final=False)
            self._requeue(payload, chunk.attempt + 1,
                          suspect=chunk.suspect)
            return
        self.settle_fail(payload, doc, chunk.attempt)
        if self.journal is not None:
            self.journal.record_error(payload["_jkey"], self.owner,
                                      chunk.attempt, doc, final=True)
        self.note_settled()

    def _requeue(self, payload: Dict, attempt: int,
                 suspect: bool = False) -> None:
        self.durability["retries"] += 1
        self.met.counter("dse.retries").inc()
        ready = time.monotonic() + self.retry.delay(attempt - 1)
        self.delayed.append((ready, _Chunk([payload], attempt,
                                           suspect)))

    def _quarantine(self, payload: Dict, deaths: int) -> None:
        index = payload["index"]
        exc = PoisonPointError(
            f"point {index} quarantined: evaluating it killed "
            f"{deaths} worker process(es)", index=index, deaths=deaths)
        doc = error_document(exc)
        doc["family"] = "poison"
        doc["deaths"] = deaths
        self.durability["quarantined"] += 1
        self.met.counter("dse.quarantined").inc()
        self.settle_fail(payload, doc, self.deaths.get(
            payload.get("_jkey") or f"i{index}", deaths))
        if self.journal is not None:
            self.journal.record_quarantine(payload["_jkey"], deaths,
                                           doc)
        self.note_settled()

    def _note_death(self) -> None:
        """One worker-process death (pool break) — counted per break
        event, not per chunk it took down."""
        self.durability["worker_deaths"] += 1
        self.met.counter("dse.worker_deaths").inc()

    def _dead(self, chunk: _Chunk, timed_out: bool) -> None:
        """A chunk's worker died under it (or we killed the pool for a
        deadline): classify each point and retry / quarantine / fail."""
        if timed_out:
            doc = {"error": "SupervisorTimeout",
                   "message": f"point exceeded the supervisor's "
                              f"{self.point_timeout}s wall-clock "
                              f"deadline (worker killed)",
                   "exit_code": 6, "family": "transient"}
            self.durability["timeouts"] += len(chunk.payloads)
            self.met.counter("dse.timeouts").inc(len(chunk.payloads))
            for payload in chunk.payloads:
                self._settle_error(chunk, payload, dict(doc))
            return
        for payload in chunk.payloads:
            key = payload.get("_jkey") or f"i{payload['index']}"
            self.deaths[key] = self.deaths.get(key, 0) + 1
            if self.deaths[key] >= 2:
                self._quarantine(payload, self.deaths[key])
            elif chunk.attempt < self.retry.max_attempts:
                # Suspects re-run in isolation (one at a time, alone
                # in the pool) so the next death names its killer.
                self.durability["retries"] += 1
                self.met.counter("dse.retries").inc()
                ready = time.monotonic() + \
                    self.retry.delay(chunk.attempt)
                self.delayed.append(
                    (ready, _Chunk([payload], chunk.attempt + 1,
                                   suspect=True)))
            else:
                doc = {"error": "WorkerDeath",
                       "message": "worker process died while "
                                  "evaluating this point",
                       "exit_code": 1, "family": "transient",
                       "deaths": self.deaths[key]}
                self.settle_fail(payload, doc, chunk.attempt)
                if self.journal is not None:
                    self.journal.record_error(
                        payload["_jkey"], self.owner, chunk.attempt,
                        doc, final=True)
                self.note_settled()

    # -- scheduling --------------------------------------------------------
    def _promote_delayed(self) -> None:
        now = time.monotonic()
        still = []
        for ready, chunk in self.delayed:
            if ready <= now:
                (self.suspects if chunk.suspect
                 else self.queue).append(chunk)
            else:
                still.append((ready, chunk))
        self.delayed = still

    def _next_wait(self) -> float:
        if not self.delayed:
            return 0.25
        now = time.monotonic()
        return max(0.01, min(0.25,
                             min(r for r, _ in self.delayed) - now))

    def _idle(self) -> bool:
        return not (self.queue or self.delayed or self.suspects
                    or self.external)

    # -- serial driver -----------------------------------------------------
    def run_serial(self) -> None:
        """In-process evaluation (workers <= 1): same retry and
        journal semantics, no pool to die."""
        while not self._idle():
            self._check_interrupt()
            self._promote_delayed()
            self._poll_external()
            chunk = None
            if self.suspects:
                chunk = self.suspects.popleft()
            elif self.queue:
                chunk = self.queue.popleft()
            if chunk is None:
                time.sleep(min(0.05, self._next_wait()))
                continue
            payloads = self._claim(chunk)
            if not payloads:
                continue
            chunk.payloads = payloads
            for payload, out in zip(payloads,
                                    _evaluate_group(
                                        _sendable(payloads))):
                self._settle(chunk, payload, out)

    # -- pooled driver -----------------------------------------------------
    def run_pooled(self) -> None:
        pool: Optional[ProcessPoolExecutor] = None
        inflight: Dict = {}   # future -> (chunk, start_monotonic)
        pool_size = min(self.workers,
                        max(1, len(self.queue) + len(self.suspects)))
        try:
            while not self._idle() or inflight:
                try:
                    self._check_interrupt(pool)
                except SweepInterrupted:
                    pool = _drop_pool(pool)
                    raise
                self._promote_delayed()
                self._poll_external()
                pool, broken_at_submit = self._submit_ready(
                    pool, pool_size, inflight)
                if not inflight:
                    if not self._idle():
                        time.sleep(min(0.05, self._next_wait()))
                    continue
                done, _pending = wait(set(inflight),
                                      timeout=self._wait_timeout(
                                          inflight),
                                      return_when=FIRST_COMPLETED)
                broken = broken_at_submit
                for future in done:
                    chunk, _t0 = inflight.pop(future)
                    exc = future.exception()
                    if exc is None:
                        for payload, out in zip(chunk.payloads,
                                                future.result()):
                            self._settle(chunk, payload, out)
                    elif isinstance(exc, BrokenProcessPool):
                        if not broken:
                            broken = True
                            self._note_death()
                        self._dead(chunk, timed_out=False)
                    else:
                        doc = unexpected_error_document(exc)
                        for payload in chunk.payloads:
                            self._settle_error(chunk, payload,
                                               dict(doc))
                if self.point_timeout is not None and inflight:
                    overdue = [
                        (future, chunk)
                        for future, (chunk, t0) in inflight.items()
                        if time.monotonic() - t0 >
                        self.point_timeout * len(chunk.payloads)]
                    if overdue:
                        _kill_pool(pool)
                        overdue_set = {future for future, _ in overdue}
                        for future, chunk in overdue:
                            inflight.pop(future)
                            self._dead(chunk, timed_out=True)
                        # Innocent bystanders of our own kill: re-run
                        # at the same attempt, no death on their record.
                        for future, (chunk, _t0) in inflight.items():
                            if future not in overdue_set:
                                (self.suspects if chunk.suspect
                                 else self.queue).append(chunk)
                        inflight.clear()
                        pool = _drop_pool(pool)
                        continue
                if broken:
                    for future, (chunk, _t0) in list(inflight.items()):
                        self._dead(chunk, timed_out=False)
                    inflight.clear()
                    pool = _drop_pool(pool)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _submit_ready(self, pool, pool_size, inflight):
        """Submit work respecting the isolation rule: while suspects
        exist, exactly one runs, alone in the pool."""
        broken = False
        while True:
            if self.suspects:
                if inflight:
                    break
                chunk = self.suspects.popleft()
            elif self.queue and len(inflight) < pool_size * 2:
                chunk = self.queue.popleft()
            else:
                break
            payloads = self._claim(chunk)
            if not payloads:
                continue
            chunk.payloads = payloads
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=pool_size)
            try:
                future = pool.submit(_evaluate_group,
                                     _sendable(payloads))
            except BrokenProcessPool:
                if not broken:
                    broken = True
                    self._note_death()
                self.queue.appendleft(chunk)
                pool = _drop_pool(pool)
                break
            inflight[future] = (chunk, time.monotonic())
            if chunk.suspect:
                break
        return pool, broken

    def _wait_timeout(self, inflight) -> float:
        timeout = self._next_wait()
        if self.point_timeout is not None:
            now = time.monotonic()
            for chunk, t0 in inflight.values():
                deadline = t0 + self.point_timeout \
                    * len(chunk.payloads)
                timeout = min(timeout, max(0.01, deadline - now))
        if self.external:
            timeout = min(timeout, 0.2)
        return timeout


def _kill_pool(pool) -> None:
    """Forcibly terminate a pool's worker processes (best effort —
    ``shutdown`` alone would wait for running tasks)."""
    if pool is None:
        return
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except (OSError, AttributeError):
            pass


def _drop_pool(pool):
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - already broken
            pass
    return None


# ---------------------------------------------------------------------------
# Planning + execution
# ---------------------------------------------------------------------------

def plan_points(workload_name: str, params_list: Sequence[Dict],
                pipeline: PipelineTemplate,
                base_sim: Dict[str, object], *,
                variant: str = "base") -> List[Dict]:
    """Plan a sweep: params -> pass spec + per-point sim dict + key.

    One planned row per point: ``{index, params, pass_spec, sim, key,
    _point, _plan_error}``.  Planning failures (bad template, unknown
    ``sim.*`` axis) are recorded as deterministic point errors rather
    than raised, so one bad axis value doesn't sink the sweep.  Shared
    by :func:`explore` and the ``repro.serve`` daemon, which plans
    here and then funnels each point through its request queue.
    """
    planned: List[Dict] = []
    for index, params in enumerate(params_list):
        point = PointResult(index=index, params=params, pass_spec=None)
        sim_over = {str(k)[4:]: v for k, v in params.items()
                    if str(k).startswith("sim.")}
        point_sim = dict(base_sim, **sim_over)
        plan_error = None
        try:
            if callable(pipeline):
                raw_spec = pipeline(params)
            else:
                raw_spec = render_pipeline(pipeline, params)
            specs = parse_pass_specs(raw_spec)
            point.pass_spec = spec_to_string(specs)
            unknown = set(sim_over) - set(base_sim)
            if unknown:
                raise ReproError(
                    f"unknown sim.* axis(es): "
                    f"{', '.join(sorted(unknown))}; known: "
                    f"{', '.join(sorted(base_sim))}")
        except ReproError as exc:
            plan_error = error_document(exc)
            plan_error["family"] = "deterministic"
        planned.append({
            "index": index,
            "params": params,
            "pass_spec": point.pass_spec,
            "sim": point_sim,
            "key": point_key(workload_name, variant, params,
                             point.pass_spec, point_sim),
            "_point": point,
            "_plan_error": plan_error,
        })
    return planned


def explore(workload, space: Union[DesignSpace, Iterable[Dict]], *,
            pipeline: PipelineTemplate,
            variant: str = "base",
            sim: Optional[SimParams] = None,
            workers: Optional[int] = None,
            cache: Union[None, str, ResultCache] = None,
            objectives: Sequence[str] = ("time_us", "alms"),
            check: bool = True,
            progress: Optional[Callable[[PointResult], None]] = None,
            journal: Union[None, str, SweepJournal] = None,
            sweep_id: Optional[str] = None,
            retry: Optional[RetryPolicy] = None,
            point_timeout: Optional[float] = None,
            lease_ttl: float = DEFAULT_LEASE_TTL,
            ) -> ExploreReport:
    """Sweep ``space`` for ``workload`` and return the report.

    ``pipeline`` is a template string (see
    :func:`repro.dse.space.render_pipeline`) or a callable mapping a
    point's params to a pass-spec string.  ``cache`` is a directory
    path or :class:`ResultCache`; None disables caching.  ``workers``
    defaults to ``min(4, cpu_count)``; 0/1 evaluates serially
    in-process.

    ``journal`` — a sweeps directory path or :class:`SweepJournal` —
    makes the sweep durable: planned points, leases, completions and
    failures are appended to
    ``<journal>/<sweep_id>/journal.jsonl``; SIGINT/SIGTERM then
    checkpoint instead of losing work, :func:`resume` completes only
    the missing points, and concurrent processes given the same
    journal shard the sweep by lease.  ``retry`` bounds transient-
    failure retries (worker death, watchdog, OSError — deterministic
    failures never retry); ``point_timeout`` is a supervisor-side
    wall-clock deadline per point that kills and retries hung
    workers.
    """
    t0 = time.perf_counter()
    w = get_workload(workload)
    if variant != "base" and variant not in w.variants:
        raise ReproError(
            f"workload {w.name!r} has no variant {variant!r}")
    for objective in objectives:
        if objective not in METRICS:
            raise ReproError(f"unknown objective {objective!r}; "
                             f"known: {', '.join(METRICS)}")
    params_list = [dict(p) for p in space]
    if not params_list:
        raise ReproError("design space is empty")
    sim = sim or SimParams()
    base_sim = sim_key_dict(sim)
    template = pipeline if isinstance(pipeline, str) else None

    planned = plan_points(w.name, params_list, pipeline, base_sim,
                          variant=variant)

    journal = _open_journal(journal, sweep_id)
    attached = journal is not None and journal.exists()
    if journal is not None and not attached:
        journal.write_plan(
            workload=w.name, variant=variant, template=template,
            objectives=list(objectives), sim=base_sim,
            points=[{"key": row["key"], "index": row["index"],
                     "params": row["params"],
                     "pass_spec": row["pass_spec"],
                     "sim": row["sim"],
                     "wallclock_timeout": sim.wallclock_timeout,
                     "check": check}
                    for row in planned])
    journal_state = journal.state() if attached else None
    if journal_state is not None:
        ours = {row["key"] for row in planned}
        theirs = set(journal_state.points)
        if theirs and ours != theirs:
            raise ReproError(
                f"sweep journal {journal.sweep_id} does not match "
                f"this sweep ({len(ours - theirs)} new / "
                f"{len(theirs - ours)} missing point(s)); start a "
                f"fresh sweep or resume with matching parameters")

    return _execute(
        w=w, variant=variant, template=template,
        objectives=list(objectives), sim=sim, base_sim=base_sim,
        workers=workers, cache=cache, check=check, progress=progress,
        planned=planned, journal=journal,
        journal_state=journal_state, retry=retry,
        point_timeout=point_timeout, lease_ttl=lease_ttl, t0=t0)


def resume(ref: str, *,
           sweeps_dir: str = DEFAULT_SWEEPS_DIR,
           workers: Optional[int] = None,
           cache: Union[None, str, ResultCache] = None,
           progress: Optional[Callable[[PointResult], None]] = None,
           retry: Optional[RetryPolicy] = None,
           point_timeout: Optional[float] = None,
           lease_ttl: float = DEFAULT_LEASE_TTL,
           ) -> ExploreReport:
    """Finish an interrupted sweep from its journal alone.

    ``ref`` is a sweep id, unique prefix, or ``last``.  The journal's
    plan carries everything — workload, variant, per-point params and
    rendered pass specs, sim config — so no grid or template needs to
    be re-supplied, and completed points are restored byte-identically
    from their recorded result documents."""
    t0 = time.perf_counter()
    journal = resolve_sweep(ref, sweeps_dir)
    state = journal.state()
    if state.plan is None:
        raise ReproError(
            f"sweep journal {journal.sweep_id} has no plan record "
            f"(torn write at creation?); it cannot be resumed")
    plan = state.plan
    w = get_workload(plan["workload"])
    base_sim = dict(plan.get("sim") or {})
    rows = state.ordered()
    planned: List[Dict] = []
    for ps in rows:
        point = PointResult(index=ps.index, params=dict(ps.params),
                            pass_spec=ps.pass_spec)
        planned.append({
            "index": ps.index,
            "params": dict(ps.params),
            "pass_spec": ps.pass_spec,
            "sim": dict(ps.sim),
            "key": ps.key,
            "_point": point,
            "_plan_error": None,
        })
    # The plan's point rows also carried the watchdog + check flags.
    wallclock = None
    check = True
    records, _ = journal.records()
    for rec in records:
        if rec.get("ev") == "point":
            wallclock = rec.get("wallclock_timeout", wallclock)
            check = rec.get("check", check)
            break
    sim = SimParams(wallclock_timeout=wallclock, **base_sim)
    return _execute(
        w=w, variant=plan.get("variant", "base"),
        template=plan.get("template"),
        objectives=list(plan.get("objectives") or ("time_us", "alms")),
        sim=sim, base_sim=base_sim, workers=workers, cache=cache,
        check=check, progress=progress, planned=planned,
        journal=journal, journal_state=state, retry=retry,
        point_timeout=point_timeout, lease_ttl=lease_ttl, t0=t0)


def _open_journal(journal, sweep_id) -> Optional[SweepJournal]:
    if journal is None or isinstance(journal, SweepJournal):
        return journal
    return SweepJournal(str(journal), sweep_id or new_sweep_id())


def _execute(*, w, variant, template, objectives, sim, base_sim,
             workers, cache, check, progress, planned, journal,
             journal_state, retry, point_timeout, lease_ttl,
             t0) -> ExploreReport:
    """Shared sweep driver behind :func:`explore` and :func:`resume`."""
    if workers is None:
        workers = default_workers()
    if isinstance(cache, str):
        cache = ResultCache(cache)
    retry = retry or RetryPolicy()
    args = list(w.args_for(variant))
    results: Dict[int, PointResult] = {}
    pending: List[Dict] = []
    resumed = 0

    cache_counts: Dict[str, int] = {k: 0 for k in COUNT_KEYS} \
        if cache is not None else {}

    def merge_counts(out: Dict) -> None:
        for key, n in (out.pop("cache_counts", None) or {}).items():
            cache_counts[key] = cache_counts.get(key, 0) + n

    def emit(point: PointResult) -> None:
        results[point.index] = point
        if progress:
            progress(point)

    def settle_ok(payload: Dict, out: Dict, attempts: int) -> Dict:
        merge_counts(out)
        point: PointResult = payload["_point"]
        point.key = out.get("key", "")
        point.fingerprint = out.get("fingerprint", "")
        point.wall_s = out.get("wall_s", 0.0)
        point.attempts = attempts
        _apply_doc(point, out["doc"], source=out["source"])
        if cache is not None and payload.get("_rkey"):
            cache.record_request(payload["_rkey"], point.key)
        emit(point)
        return point.to_json()

    def settle_fail(payload: Dict, doc: Dict, attempts: int) -> Dict:
        point: PointResult = payload["_point"]
        point.status = "failed"
        point.error = doc
        point.attempts = attempts
        emit(point)
        return point.to_json()

    def restore(payload: Dict, ps: PointState) -> None:
        nonlocal resumed
        point: PointResult = payload["_point"]
        if ps.status == "done" and ps.doc:
            restored = PointResult.from_json(ps.doc)
            restored.index = point.index
            restored.params = point.params
            restored.source = "journal"
            emit(restored)
        else:
            point.status = "failed"
            point.error = ps.error or {
                "error": "ReproError",
                "message": "journal records a failure with no "
                           "document", "exit_code": 2}
            point.source = "journal"
            point.attempts = max(1, ps.attempts)
            emit(point)
        resumed += 1

    # Settle what we can without dispatching: planning failures,
    # journal restores, request-index cache hits.
    for row in planned:
        point: PointResult = row["_point"]
        ps = journal_state.points.get(row["key"]) \
            if journal_state is not None else None
        if ps is not None and ps.settled:
            restore(row, ps)
            continue
        if row["_plan_error"] is not None:
            point.error = row["_plan_error"]
            emit(point)
            if journal is not None:
                journal.record_error(row["key"], "planner", 1,
                                     row["_plan_error"], final=True)
            continue
        rkey = None
        if cache is not None:
            rkey = request_key(w.name, variant, row["pass_spec"],
                               args, row["sim"])
            doc = cache.lookup_request(rkey)
            if doc is not None:
                _apply_doc(point, doc, source="cache-index")
                emit(point)
                if journal is not None:
                    journal.record_done(row["key"], "index",
                                        point.to_json())
                continue
        pending.append({
            "index": row["index"],
            "workload": w.name,
            "variant": variant,
            "pass_spec": row["pass_spec"],
            "sim": row["sim"],
            "wallclock_timeout": sim.wallclock_timeout,
            "check": check,
            "cache_root": cache.root if cache is not None else None,
            "_point": point,
            "_rkey": rkey,
            "_jkey": row["key"],
        })

    # Batched dispatch: points sharing a pass spec share a canonical
    # circuit fingerprint, so they ship to workers as *groups* and the
    # front-end runs once per group (sim.*-only sweeps pay one
    # translation + optimization + specialization for the whole axis).
    # Each group is split into at most ``workers`` chunks so a single
    # large group still saturates the pool.
    by_spec: Dict[str, List[Dict]] = {}
    for payload in pending:
        by_spec.setdefault(payload["pass_spec"], []).append(payload)
    chunks: List[List[Dict]] = []
    for group in by_spec.values():
        ways = min(max(1, workers), len(group))
        chunks.extend([group[i::ways] for i in range(ways)])

    met = telemetry.metrics()
    group_sizes = met.histogram("dse.group_size",
                                buckets=(1, 2, 4, 8, 16, 32, 64))
    for chunk in chunks:
        group_sizes.observe(len(chunk))

    sup = _Supervisor(
        chunks=chunks, workers=workers, retry=retry,
        point_timeout=point_timeout, journal=journal,
        lease_ttl=lease_ttl, settle_ok=settle_ok,
        settle_fail=settle_fail, restore=restore, met=met)
    sup._settled = len(results)
    sup._total = len(planned)

    saved_signals = sup.install_signals() if journal is not None \
        else {}
    try:
        with telemetry.tracer().span("dse.explore", category="dse",
                                     workload=w.name,
                                     points=len(planned),
                                     workers=workers) as _sp:
            if len(pending) <= 1 or workers <= 1:
                sup.run_serial()
            else:
                sup.run_pooled()
            if cache is not None:
                cache.save_index()
                for key, n in cache.counts.items():
                    cache_counts[key] = cache_counts.get(key, 0) + n

            durability = dict(sup.durability)
            durability["resumed"] = resumed
            report = ExploreReport(
                workload=w.name, variant=variant, template=template,
                objectives=list(objectives), sim=base_sim,
                workers=workers,
                points=[results[i] for i in sorted(results)],
                wall_s=time.perf_counter() - t0,
                cache=dict(cache_counts) if cache is not None else {},
                sweep_id=journal.sweep_id if journal else "",
                durability=durability)
            c = report.counts
            _sp.set(ok=c["ok"], failed=c["failed"],
                    cache_hits=c["cache_hits"], groups=len(chunks),
                    resumed=c["resumed"],
                    quarantined=c["quarantined"])
    finally:
        for sig, old in saved_signals.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):
                pass

    if telemetry.enabled():
        met.counter("dse.points.dispatched").inc(len(pending))
        met.counter("dse.points.ok").inc(c["ok"])
        met.counter("dse.points.failed").inc(c["failed"])
        met.counter("dse.points.cached").inc(c["cache_hits"])
        met.counter("dse.points.resumed").inc(c["resumed"])
        for key, n in report.cache.items():
            met.counter(f"dse.cache.{key}").inc(n)
        for p in report.points:
            if p.fingerprint:
                telemetry.note_fingerprint(p.fingerprint)
    return report


def _apply_doc(point: PointResult, doc: Dict, source: str) -> None:
    point.status = "ok"
    point.source = source
    point.key = doc.get("key", point.key)
    point.fingerprint = doc.get("fingerprint", point.fingerprint)
    point.cycles = doc["cycles"]
    point.verified = doc.get("verified")
    point.stats = doc["stats"]
    point.synth = doc["synth"]

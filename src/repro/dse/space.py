"""Design-space definitions: grids, random samples, and pipeline
templates.

A design space is a set of *points*, each a flat ``{param: value}``
dict.  A **pipeline template** maps a point onto a concrete pass-spec
string (:mod:`repro.opt.specs` grammar) with two extensions:

* ``{param}`` placeholders are substituted from the point
  (``banking={banks}``);
* a segment may carry a guard — ``segment?param OP value`` with ``OP``
  one of ``== != >= <= > <`` — and is dropped when the guard is false
  (``tiling={tiles}?tiles>1``).

Points may also carry simulation-environment axes prefixed ``sim.``
(e.g. ``sim.loop_invocation_window``); those never reach the template
and instead override :class:`~repro.sim.SimParams` fields per point.
"""

from __future__ import annotations

import itertools
import re
from typing import Dict, Iterator, List, Mapping, Sequence

from ..errors import ReproError
from ..util.rng import rng_for

_GUARD_RE = re.compile(
    r"^(?P<param>[A-Za-z_][A-Za-z0-9_.]*)\s*"
    r"(?P<op>==|!=|>=|<=|>|<)\s*(?P<value>-?[0-9.]+)$")

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
}


def _eval_guard(guard: str, params: Mapping) -> bool:
    match = _GUARD_RE.match(guard.strip())
    if not match:
        raise ReproError(
            f"bad pipeline-template guard {guard!r} "
            f"(expected 'param OP number')")
    name = match.group("param")
    if name not in params:
        raise ReproError(
            f"pipeline-template guard references unknown axis "
            f"{name!r}; axes: {', '.join(sorted(map(str, params)))}")
    value = float(match.group("value"))
    return _OPS[match.group("op")](float(params[name]), value)


def render_pipeline(template: str, params: Mapping) -> str:
    """Template + point -> concrete pass-spec string.

    Guards are evaluated first, then ``{param}`` placeholders are
    substituted.  ``sim.*`` axes are not visible to templates.
    """
    visible = {k: v for k, v in params.items()
               if not str(k).startswith("sim.")}
    kept: List[str] = []
    for segment in template.split(","):
        segment = segment.strip()
        if not segment:
            continue
        body, _, guard = segment.partition("?")
        if guard and not _eval_guard(guard, visible):
            continue
        kept.append(body.strip())
    try:
        return ",".join(kept).format(**visible)
    except KeyError as exc:
        raise ReproError(
            f"pipeline template references unknown axis {exc}; "
            f"axes: {', '.join(sorted(map(str, visible)))}")
    except (IndexError, ValueError) as exc:
        raise ReproError(f"bad pipeline template: {exc}")


class DesignSpace:
    """Base class: iterable of point dicts."""

    def points(self) -> Iterator[Dict]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Dict]:
        return self.points()


class GridSpace(DesignSpace):
    """Full cross product of the axes, in axis-declaration order."""

    def __init__(self, axes: Mapping[str, Sequence]):
        if not axes:
            raise ReproError("grid space needs at least one axis")
        self.axes: Dict[str, List] = {
            str(k): list(v) for k, v in axes.items()}
        for name, values in self.axes.items():
            if not values:
                raise ReproError(f"grid axis {name!r} has no values")

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def points(self) -> Iterator[Dict]:
        names = list(self.axes)
        for combo in itertools.product(*self.axes.values()):
            yield dict(zip(names, combo))


class RandomSpace(DesignSpace):
    """``n`` distinct points sampled uniformly from the axes' grid.

    Sampling is deterministic from ``seed`` (via the repo-wide
    :func:`repro.util.rng.rng_for` streams) and without replacement;
    asking for more points than the grid holds yields the whole grid.
    """

    def __init__(self, axes: Mapping[str, Sequence], n: int,
                 seed: int = 0):
        self.grid = GridSpace(axes)
        self.n = int(n)
        self.seed = seed
        if self.n <= 0:
            raise ReproError("random space needs n >= 1 points")

    def __len__(self) -> int:
        return min(self.n, len(self.grid))

    def points(self) -> Iterator[Dict]:
        all_points = list(self.grid.points())
        if self.n >= len(all_points):
            yield from all_points
            return
        rng = rng_for(self.seed, "dse.random_space")
        yield from rng.sample(all_points, self.n)


def parse_axis(text: str) -> tuple:
    """``"banks=1,2,4"`` -> ``("banks", [1, 2, 4])`` (CLI helper)."""
    name, sep, values = text.partition("=")
    name = name.strip()
    if not sep or not name or not values.strip():
        raise ReproError(
            f"bad axis {text!r}; expected NAME=V1,V2,...")
    return name, [_parse_axis_value(v) for v in values.split(",")
                  if v.strip()]


def _parse_axis_value(text: str):
    text = text.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text

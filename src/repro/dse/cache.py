"""Persistent content-addressed result cache for design-space sweeps.

Two-level scheme:

* **objects** — ``<root>/objects/<k:2>/<key>.json``; ``key`` is the
  SHA-256 of the *content identity* of an evaluation: the canonical
  circuit fingerprint (:func:`repro.core.serialize.circuit_fingerprint`
  — order-invariant, display-name-free) plus everything else that
  determines the result: workload identity (name, variant, args),
  the semantically relevant :class:`~repro.sim.SimParams` fields, and
  the cache schema version.  The object document holds the full
  :class:`~repro.sim.SimStats` JSON and synthesis report, so a hit is
  bit-identical to a fresh run.
* **request index** — ``<root>/index.json``; maps the SHA-256 of the
  *request* (workload, variant, pass-spec string, sim config) to the
  content key it produced last time.  Warm re-runs are served from the
  index without translating or optimizing anything; overlapping sweeps
  whose different requests produce the same hardware (e.g. reordered
  but commuting pass specs) still share one object via the content
  key.

Object writes are atomic (temp file + ``os.replace``) so parallel
workers may share a cache directory; the index is only written by the
coordinating parent process.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from typing import Dict, Optional

CACHE_SCHEMA = "repro.dse-cache/v1"

#: SimParams fields that determine simulation *results* (not wall-time
#: behavior like watchdogs or observability sinks).
SIM_KEY_FIELDS = ("kernel", "max_cycles", "deadlock_window",
                  "loop_invocation_window", "decoupled_queue_depth",
                  "observe")


def sim_key_dict(params) -> Dict[str, object]:
    """The result-determining subset of a SimParams, JSON-shaped."""
    return {name: getattr(params, name) for name in SIM_KEY_FIELDS}


def _digest(doc: Dict) -> str:
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def content_key(fingerprint: str, workload: str, variant: str,
                args, sim: Dict[str, object]) -> str:
    """Content identity of one evaluation -> object key."""
    return _digest({
        "schema": CACHE_SCHEMA,
        "circuit": fingerprint,
        "workload": workload,
        "variant": variant,
        "args": [repr(a) for a in args],
        "sim": sim,
    })


def request_key(workload: str, variant: str, pass_spec: str,
                args, sim: Dict[str, object]) -> str:
    """Cheap pre-translation identity of one request -> index key."""
    return _digest({
        "schema": CACHE_SCHEMA,
        "workload": workload,
        "variant": variant,
        "passes": pass_spec,
        "args": [repr(a) for a in args],
        "sim": sim,
    })


#: Keys of :attr:`ResultCache.counts` (all always present, start at 0).
COUNT_KEYS = ("object_hits", "object_misses", "object_corrupt",
              "index_hits", "index_misses", "write_errors")


class ResultCache:
    """On-disk object store + request index (see module docstring).

    Every lookup is tallied in :attr:`counts`: object-store hits,
    misses (no file), corrupt reads (unparsable or wrong-schema
    documents — served as misses but counted separately so a decaying
    cache is visible), request-index hits/misses, and write errors.
    Workers ship their counts back to the sweep coordinator, which
    aggregates them into the explore report and the telemetry metrics
    registry.

    Two robustness behaviors:

    * a **corrupt object is quarantined on first read** — the file is
      renamed to ``<key>.json.corrupt`` so each corruption is counted
      once and every later lookup is an ordinary miss that re-evaluates
      and overwrites, instead of re-parsing the same bad bytes forever;
    * **write failures degrade, never abort** — if the disk is full or
      the directory unwritable, ``put``/``save_index`` fall back to an
      in-memory overlay with a one-time warning (``write_errors``
      counts every failed write).  The sweep completes; only
      persistence is lost.
    """

    def __init__(self, root: str):
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.index_path = os.path.join(root, "index.json")
        self._index: Optional[Dict[str, str]] = None
        self.counts: Dict[str, int] = {k: 0 for k in COUNT_KEYS}
        #: In-memory overlay used when disk writes fail (degraded mode).
        self._mem: Dict[str, Dict] = {}
        self._warned_degraded = False
        try:
            os.makedirs(self.objects_dir, exist_ok=True)
        except OSError as exc:
            self._degrade(exc)

    def _degrade(self, exc: OSError) -> None:
        self.counts["write_errors"] += 1
        if not self._warned_degraded:
            self._warned_degraded = True
            print(f"warning: result cache {self.root} is not "
                  f"writable ({exc}); caching in memory only for "
                  f"this process", file=sys.stderr)

    @property
    def degraded(self) -> bool:
        """True once any disk write failed and the in-memory overlay
        took over persistence for this process."""
        return self._warned_degraded

    # -- object store ----------------------------------------------------
    def _object_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    def _quarantine(self, path: str) -> None:
        """Rename a corrupt object out of the lookup path (best
        effort): later reads miss instead of re-counting corruption."""
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            pass

    def get(self, key: str) -> Optional[Dict]:
        """Object document for ``key``, or None (corrupt = miss)."""
        if key in self._mem:
            self.counts["object_hits"] += 1
            return self._mem[key]
        path = self._object_path(key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.counts["object_misses"] += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.counts["object_corrupt"] += 1
            self._quarantine(path)
            return None
        if doc.get("schema") != CACHE_SCHEMA:
            self.counts["object_corrupt"] += 1
            self._quarantine(path)
            return None
        self.counts["object_hits"] += 1
        return doc

    def put(self, key: str, doc: Dict) -> None:
        """Atomically store ``doc`` under ``key`` (last writer wins).

        Degrades to the in-memory overlay on any filesystem error
        (disk full, permissions): a sweep never aborts because its
        cache stopped persisting."""
        doc = dict(doc, schema=CACHE_SCHEMA, key=key)
        try:
            self._put_disk(key, doc)
        except OSError as exc:
            self._mem[key] = doc
            self._degrade(exc)

    def _put_disk(self, key: str, doc: Dict) -> None:
        path = self._object_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- request index ---------------------------------------------------
    def _load_index(self) -> Dict[str, str]:
        if self._index is None:
            try:
                with open(self.index_path) as fh:
                    data = json.load(fh)
                self._index = dict(data.get("requests", {})) \
                    if data.get("schema") == CACHE_SCHEMA else {}
            except (OSError, json.JSONDecodeError):
                self._index = {}
        return self._index

    def lookup_request(self, req_key: str) -> Optional[Dict]:
        """Request key -> object document, via the index (None = miss)."""
        ckey = self._load_index().get(req_key)
        if ckey is None:
            self.counts["index_misses"] += 1
            return None
        self.counts["index_hits"] += 1
        return self.get(ckey)

    def record_request(self, req_key: str, ckey: str) -> None:
        self._load_index()[req_key] = ckey

    def save_index(self) -> None:
        index = self._load_index()
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                json.dump({"schema": CACHE_SCHEMA, "requests": index},
                          fh, indent=1, sort_keys=True)
            os.replace(tmp, self.index_path)
        except OSError as exc:
            self._degrade(exc)

"""Design-space exploration: parallel sweeps with a persistent
content-addressed cache and Pareto-frontier extraction.

Quick tour::

    from repro.dse import GridSpace, explore

    report = explore(
        "img_scale",
        GridSpace({"banks": [1, 2, 4], "tiles": [1, 2, 4]}),
        pipeline="localize,banking={banks},fusion,tuning,"
                 "pipelining?tiles>1,tiling={tiles}?tiles>1",
        workers=4, cache=".repro-cache")
    for index in report.pareto:
        print(report.point(index).describe())

See :mod:`repro.dse.engine` for the execution model,
:mod:`repro.dse.cache` for the cache-key scheme, and
:mod:`repro.dse.space` for spaces and pipeline templates.
"""

from .cache import (  # noqa: F401
    CACHE_SCHEMA,
    ResultCache,
    content_key,
    request_key,
    sim_key_dict,
)
from .engine import (  # noqa: F401
    DURABILITY_KEYS,
    EXPLORE_SCHEMA,
    METRICS,
    ExploreReport,
    PointResult,
    RetryPolicy,
    default_workers,
    explore,
    pareto_frontier,
    resume,
)
from .journal import (  # noqa: F401
    DEFAULT_LEASE_TTL,
    DEFAULT_SWEEPS_DIR,
    SWEEP_SCHEMA,
    SweepJournal,
    list_sweeps,
    new_sweep_id,
    point_key,
    resolve_sweep,
)
from .space import (  # noqa: F401
    DesignSpace,
    GridSpace,
    RandomSpace,
    parse_axis,
    render_pipeline,
)

"""The sweep journal: a crash-resumable record of one design sweep.

One append-only JSONL file per sweep under
``.repro/sweeps/<sweep-id>/journal.jsonl``, written with the same
atomic ``O_APPEND`` single-write + torn-line-skipping discipline as
the telemetry run ledger (shared via :mod:`repro.util.jsonl`).  The
journal records everything needed to finish an interrupted sweep —
or to shard one sweep across many processes — without re-evaluating
a single completed point:

* ``plan`` — the sweep header: workload, variant, template,
  objectives, the base sim config, and the planned point count;
* ``point`` — one per planned point: its fingerprint-stable ``key``
  (a digest of workload/variant/params/pass-spec/sim — stable across
  processes and re-runs), index, params, and rendered pass spec;
* ``claim`` — a TTL lease taken by a worker process before it
  evaluates a point.  Claims race benignly: every claimant re-reads
  the journal after appending, and the **earliest unexpired claim in
  file order wins** (file order is total under ``O_APPEND``), so
  concurrent processes sharding one journal evaluate each point
  exactly once.  A crashed owner's lease simply expires and the point
  becomes claimable again;
* ``done`` — the point's full result document (so a resume rebuilds
  a byte-identical report without touching the cache);
* ``error`` — one per failed attempt, carrying the structured error
  document and whether the failure is final (deterministic error
  families and exhausted retry budgets) or will be retried;
* ``quarantine`` — poison points that killed worker processes twice;
* ``interrupt`` — a SIGINT/SIGTERM checkpoint marker.

Replaying the journal (:meth:`SweepJournal.state`) folds those events
into per-point statuses; ``repro explore --resume <sweep>`` executes
only points that are not ``done``/``failed``/``quarantined`` and not
under a live lease.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..util.jsonl import append_jsonl, read_jsonl

SWEEP_SCHEMA = "repro.sweep/v1"
DEFAULT_SWEEPS_DIR = os.path.join(".repro", "sweeps")
JOURNAL_NAME = "journal.jsonl"

#: Default lease TTL.  Generous: a lease only matters when its owner
#: died without writing ``done``/``error``, and reclaiming too eagerly
#: risks double evaluation during long points.
DEFAULT_LEASE_TTL = 300.0


def new_sweep_id() -> str:
    """Sortable, collision-safe id (same shape as run ids)."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid():05d}-{os.urandom(3).hex()}"


def point_key(workload: str, variant: str, params: Dict,
              pass_spec: Optional[str], sim: Dict) -> str:
    """Fingerprint-stable identity of one planned point.

    Hashes the *request*, not the result: the same grid re-planned by
    another process (or a resume) derives the same keys, which is what
    lets journals match points across runs."""
    payload = json.dumps({
        "schema": SWEEP_SCHEMA,
        "workload": workload,
        "variant": variant,
        "params": params,
        "passes": pass_spec,
        "sim": sim,
    }, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class PointState:
    """Folded journal view of one planned point."""

    key: str
    index: int
    params: Dict = field(default_factory=dict)
    pass_spec: Optional[str] = None
    sim: Dict = field(default_factory=dict)
    status: str = "todo"        # todo | done | failed | quarantined
    attempts: int = 0           # error events recorded so far
    doc: Optional[Dict] = None  # PointResult.to_json() once done
    error: Optional[Dict] = None
    #: Claims since the last settle event: (owner, ts, ttl).
    claims: List[Tuple[str, float, float]] = field(default_factory=list)

    def lease_owner(self, now: Optional[float] = None) -> Optional[str]:
        """Owner of the winning live lease, or None.  The earliest
        unexpired claim in append order wins."""
        now = time.time() if now is None else now
        for owner, ts, ttl in self.claims:
            if ts + ttl > now:
                return owner
        return None

    def runnable(self, now: Optional[float] = None) -> bool:
        return self.status == "todo" and self.lease_owner(now) is None

    @property
    def settled(self) -> bool:
        return self.status in ("done", "failed", "quarantined")


@dataclass
class SweepState:
    """Everything a resume (or ``repro sweeps show``) needs."""

    sweep_id: str
    plan: Optional[Dict] = None
    points: Dict[str, PointState] = field(default_factory=dict)
    interrupted: int = 0
    skipped_lines: int = 0

    def ordered(self) -> List[PointState]:
        return sorted(self.points.values(), key=lambda p: p.index)

    @property
    def counts(self) -> Dict[str, int]:
        pts = self.points.values()
        return {
            "planned": len(self.points),
            "done": sum(p.status == "done" for p in pts),
            "failed": sum(p.status == "failed" for p in pts),
            "quarantined": sum(p.status == "quarantined" for p in pts),
            "todo": sum(p.status == "todo" for p in pts),
            "interrupts": self.interrupted,
        }

    @property
    def complete(self) -> bool:
        return bool(self.points) and \
            all(p.settled for p in self.points.values())

    def summary(self) -> Dict:
        c = self.counts
        plan = self.plan or {}
        status = "complete" if self.complete else \
            ("interrupted" if self.interrupted else "partial")
        return {
            "sweep_id": self.sweep_id,
            "ts": plan.get("start_ts", ""),
            "workload": plan.get("workload", "?"),
            "variant": plan.get("variant", "?"),
            "status": status,
            **c,
        }


class SweepJournal:
    """Append-only event store for one sweep (see module docstring)."""

    def __init__(self, sweeps_dir: str, sweep_id: str):
        self.sweeps_dir = sweeps_dir
        self.sweep_id = sweep_id
        self.dir = os.path.join(sweeps_dir, sweep_id)
        self.path = os.path.join(self.dir, JOURNAL_NAME)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- writing -----------------------------------------------------------
    def append(self, ev: str, **fields) -> None:
        # Floor, don't round: a ts rounded up to 0.5ms into the future
        # keeps a zero-TTL lease alive past its claim time.
        record = {"schema": SWEEP_SCHEMA, "ev": ev,
                  "ts": int(time.time() * 1000) / 1000, **fields}
        append_jsonl(self.path, record)

    def write_plan(self, *, workload: str, variant: str,
                   template: Optional[str], objectives: List[str],
                   sim: Dict, points: List[Dict]) -> None:
        """Append the sweep header + one ``point`` event per planned
        point.  ``points`` rows carry index/params/pass_spec/sim/key."""
        self.append("plan", sweep_id=self.sweep_id, workload=workload,
                    variant=variant, template=template,
                    objectives=list(objectives), sim=dict(sim),
                    n_points=len(points),
                    start_ts=time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                           time.gmtime()))
        for row in points:
            self.append("point", **row)

    def claim(self, keys: List[str], owner: str,
              ttl: float = DEFAULT_LEASE_TTL) -> None:
        for key in keys:
            self.append("claim", key=key, owner=owner, ttl=ttl)

    def record_done(self, key: str, owner: str, doc: Dict) -> None:
        self.append("done", key=key, owner=owner, point=doc)

    def record_error(self, key: str, owner: str, attempt: int,
                     error: Dict, final: bool) -> None:
        self.append("error", key=key, owner=owner, attempt=attempt,
                    error=error, final=final)

    def record_quarantine(self, key: str, deaths: int,
                          error: Dict) -> None:
        self.append("quarantine", key=key, deaths=deaths, error=error)

    def record_interrupt(self, signal_name: str) -> None:
        self.append("interrupt", signal=signal_name)

    # -- reading -----------------------------------------------------------
    def records(self) -> Tuple[List[Dict], int]:
        return read_jsonl(self.path, schema=SWEEP_SCHEMA)

    def state(self) -> SweepState:
        """Fold the event log into per-point statuses.

        Duplicate ``plan``/``point`` events (two processes planning the
        same sweep concurrently — benign under O_APPEND) collapse to
        the first occurrence; settle events (`done`/final `error`/
        `quarantine`) clear outstanding claims; the first settle event
        for a key wins."""
        records, skipped = self.records()
        state = SweepState(sweep_id=self.sweep_id,
                           skipped_lines=skipped)
        for rec in records:
            ev = rec.get("ev")
            if ev == "plan":
                if state.plan is None:
                    state.plan = rec
                continue
            if ev == "interrupt":
                state.interrupted += 1
                continue
            key = rec.get("key")
            if ev == "point":
                if key and key not in state.points:
                    state.points[key] = PointState(
                        key=key, index=rec.get("index", -1),
                        params=rec.get("params") or {},
                        pass_spec=rec.get("pass_spec"),
                        sim=rec.get("sim") or {})
                continue
            point = state.points.get(key)
            if point is None:
                continue  # claim/done for an unplanned key: ignore
            if ev == "claim":
                point.claims.append((rec.get("owner", "?"),
                                     rec.get("ts", 0.0),
                                     rec.get("ttl", DEFAULT_LEASE_TTL)))
            elif ev == "done":
                if not point.settled:
                    point.status = "done"
                    point.doc = rec.get("point")
                point.claims.clear()
            elif ev == "error":
                point.attempts += 1
                point.claims.clear()
                if rec.get("final") and not point.settled:
                    point.status = "failed"
                    point.error = rec.get("error")
            elif ev == "quarantine":
                if not point.settled:
                    point.status = "quarantined"
                    point.error = rec.get("error")
                point.claims.clear()
        return state

    def won_claim(self, key: str, owner: str,
                  now: Optional[float] = None) -> bool:
        """Re-read the journal and report whether ``owner`` holds the
        winning lease on ``key`` (call after :meth:`claim` to settle
        races; the earliest unexpired claim in file order wins)."""
        point = self.state().points.get(key)
        if point is None or point.settled:
            return False
        return point.lease_owner(now) == owner


# -- directory-level helpers -------------------------------------------------

def list_sweeps(sweeps_dir: str = DEFAULT_SWEEPS_DIR) -> List[Dict]:
    """Summaries of every journal under ``sweeps_dir``, oldest first."""
    try:
        ids = sorted(os.listdir(sweeps_dir))
    except OSError:
        return []
    out = []
    for sweep_id in ids:
        journal = SweepJournal(sweeps_dir, sweep_id)
        if journal.exists():
            out.append(journal.state().summary())
    return out


def resolve_sweep(ref: str,
                  sweeps_dir: str = DEFAULT_SWEEPS_DIR) -> SweepJournal:
    """Resolve ``ref`` (``last``, a unique id prefix, or a full id)
    to an existing journal."""
    try:
        ids = sorted(name for name in os.listdir(sweeps_dir)
                     if SweepJournal(sweeps_dir, name).exists())
    except OSError:
        ids = []
    if not ids:
        raise ReproError(f"no sweep journals under {sweeps_dir}")
    if ref in ("last", "latest", "-1"):
        return SweepJournal(sweeps_dir, ids[-1])
    matches = [name for name in ids if name.startswith(ref)]
    if not matches:
        raise ReproError(
            f"no sweep matching {ref!r} under {sweeps_dir} "
            f"(try 'repro sweeps list')")
    if len(matches) > 1:
        raise ReproError(f"{ref!r} is ambiguous: "
                         f"{', '.join(matches[:5])}")
    return SweepJournal(sweeps_dir, matches[0])

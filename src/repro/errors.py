"""Exception hierarchy for the uIR reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single type at the top level.  Sub-hierarchies
mirror the pipeline stages: front-end (parsing / lowering), translation
(software IR -> uIR), graph construction, optimization passes,
simulation, and RTL generation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FrontendError(ReproError):
    """Base class for errors in the MiniC front-end."""


class LexError(FrontendError):
    """Raised when the lexer encounters an unrecognized character."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(FrontendError):
    """Raised on a syntax error in a MiniC program."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class LoweringError(FrontendError):
    """Raised when a MiniC AST cannot be lowered to software IR."""


class IRError(ReproError):
    """Raised on malformed software IR (bad operands, missing blocks...)."""


class TypeMismatchError(IRError):
    """Raised when operand types disagree with an operation's signature."""


class InterpreterError(ReproError):
    """Raised when the reference interpreter hits an invalid state."""


class TranslationError(ReproError):
    """Raised when software IR cannot be translated to a uIR graph."""


class GraphError(ReproError):
    """Raised on structurally invalid uIR graphs (dangling ports...)."""


class ValidationError(GraphError):
    """Raised by the uIR validator; carries the list of violations."""

    def __init__(self, violations):
        self.violations = list(violations)
        summary = "; ".join(self.violations[:5])
        extra = len(self.violations) - 5
        if extra > 0:
            summary += f" (+{extra} more)"
        super().__init__(f"uIR validation failed: {summary}")


class PassError(ReproError):
    """Raised when a uopt pass cannot be applied to a circuit."""


class SimulationError(ReproError):
    """Raised on simulator misconfiguration or runtime failure."""


class SimulationTimeout(SimulationError):
    """Raised when a run exceeds ``max_cycles`` (still making progress,
    unlike a deadlock — the two are distinct failure artifacts)."""

    def __init__(self, cycle: int, max_cycles: int):
        super().__init__(
            f"exceeded max_cycles={max_cycles} at cycle {cycle}")
        self.cycle = cycle
        self.max_cycles = max_cycles


class WatchdogTimeout(SimulationError):
    """Raised by the wall-clock watchdog: the simulation process itself
    (not the simulated circuit) ran too long.  Carries the last
    simulated cycle so a repro can bound ``max_cycles`` near it."""

    def __init__(self, cycle: int, elapsed: float, limit: float):
        super().__init__(
            f"watchdog: wall-clock {elapsed:.1f}s exceeded "
            f"{limit:.1f}s at cycle {cycle}")
        self.cycle = cycle
        self.elapsed = elapsed
        self.limit = limit


class LaneDivergence(SimulationError):
    """Raised when a batched (lane-vectorized) run feeds a
    lane-divergent value into a control decision — a truth test, an
    address, a loop bound.  Uniform control across lanes is the
    soundness condition of the batched kernel, so this is not an
    error of the *circuit*: the batch driver catches it and deopts to
    independent per-lane runs (see :mod:`repro.core.lanes`)."""


class KernelCompileError(SimulationError):
    """Raised when the compiled simulation kernel cannot specialize a
    circuit (e.g. a node kind with no registered step compiler).  With
    ``SimParams.compile_fallback`` enabled the engine downgrades this
    to a warning and runs the event kernel instead; with fallback
    disabled it surfaces as its own CLI exit-code family."""

    def __init__(self, message: str, task: str = "", node: str = ""):
        super().__init__(message)
        self.task = task
        self.node = node


class DeadlockError(SimulationError):
    """Raised when the simulation makes no progress for too long.

    ``diagnostics`` carries the stall-attributed view of the blocked
    state: a list of dicts, one per live task block, each naming the
    blocked nodes and the *cause* each one is waiting on (taxonomy in
    :mod:`repro.sim.observe`) plus queue/park occupancy — so the
    report says *why* nothing can move, not just that nothing did.
    """

    def __init__(self, cycle: int, detail: str = "",
                 diagnostics=None):
        msg = f"simulation deadlocked at cycle {cycle}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.cycle = cycle
        self.diagnostics = list(diagnostics or [])


class PoisonPointError(ReproError):
    """Raised for a design point quarantined by the sweep supervisor:
    evaluating it killed a worker process twice, so retrying it again
    would only keep tearing the pool down.  Carries the point's index
    and how many worker deaths it was implicated in."""

    def __init__(self, message: str, index: int = -1, deaths: int = 0):
        super().__init__(message)
        self.index = index
        self.deaths = deaths


class SweepInterrupted(ReproError):
    """Raised when a design-space sweep is stopped by SIGINT/SIGTERM.

    Not a failure of any point: the supervisor checkpoints the sweep
    journal first, so the message carries the ``--resume`` hint and
    ``sweep_id``/``completed``/``total`` let callers report progress.
    """

    def __init__(self, sweep_id: str, completed: int, total: int,
                 signal_name: str = "SIGINT"):
        super().__init__(
            f"sweep interrupted by {signal_name} after "
            f"{completed}/{total} point(s); resume with: "
            f"repro explore --resume {sweep_id}")
        self.sweep_id = sweep_id
        self.completed = completed
        self.total = total
        self.signal_name = signal_name


class RTLError(ReproError):
    """Raised when uIR cannot be lowered to Chisel/FIRRTL/Verilog."""


class SchedulingError(ReproError):
    """Raised by the HLS baseline when a schedule cannot be formed."""


class WorkloadError(ReproError):
    """Raised when a workload definition or its golden check fails."""


class VerificationError(ReproError):
    """Base class for failures of the verification layer itself."""


class LIViolationError(VerificationError):
    """Raised when a circuit violates latency-insensitivity: its
    results or memory image changed under a fault plan that only
    perturbs timing.  Carries what diverged for the repro bundle."""

    def __init__(self, message: str, detail=None):
        super().__init__(message)
        self.detail = dict(detail or {})


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------
# Exit code 0 is success and 1 is reserved for behavior mismatches
# reported without an exception (``simulate`` comparing against the
# interpreter).  Every ReproError subclass maps to a distinct nonzero
# code so scripts and CI can branch on the failure *class* without
# parsing tracebacks.  Most-derived class wins (DeadlockError is a
# SimulationError but exits 4, not 6).
EXIT_CODES = {
    "ReproError": 2,          # generic usage / configuration error
    "FrontendError": 2,       # parse family (lex / parse / lowering)
    "IRError": 3,             # malformed IR / graph / validation
    "GraphError": 3,
    "TranslationError": 3,
    "DeadlockError": 4,
    "WorkloadError": 5,       # workload golden-check mismatch
    "SimulationError": 6,     # incl. SimulationTimeout / WatchdogTimeout
    "KernelCompileError": 10,  # compiled-kernel specialization failure
    "VerificationError": 7,   # incl. LIViolationError
    "PassError": 8,
    "RTLError": 9,
    "SchedulingError": 9,
    "InterpreterError": 6,
    "PoisonPointError": 11,   # point quarantined after killing workers
    "SweepInterrupted": 130,  # SIGINT/SIGTERM checkpoint (shell idiom)
}


def exit_code_for(exc: BaseException) -> int:
    """Distinct CLI exit code for an exception (most-derived wins)."""
    for cls in type(exc).__mro__:
        code = EXIT_CODES.get(cls.__name__)
        if code is not None:
            return code
    return 1


def error_document(exc: BaseException) -> dict:
    """Machine-readable failure description (``--json-errors``)."""
    doc = {
        "error": type(exc).__name__,
        "message": str(exc),
        "exit_code": exit_code_for(exc),
    }
    for attr in ("cycle", "line", "column", "max_cycles", "elapsed",
                 "limit", "task", "node"):
        value = getattr(exc, attr, None)
        if value is not None and value != "":
            doc[attr] = value
    diagnostics = getattr(exc, "diagnostics", None)
    if diagnostics:
        doc["diagnostics"] = diagnostics
    violations = getattr(exc, "violations", None)
    if violations:
        doc["violations"] = violations
    detail = getattr(exc, "detail", None)
    if detail:
        doc["detail"] = detail
    return doc


# ---------------------------------------------------------------------------
# Retry classification (sweep supervision)
# ---------------------------------------------------------------------------
# The sweep supervisor retries only failures whose cause lives in the
# *environment* — a worker killed by the OS, a wall-clock watchdog on a
# loaded box, a filesystem hiccup.  Failures that are a property of the
# design point itself (a deadlock, an LI violation, a pass that cannot
# apply, a parse error) are deterministic: re-running them burns budget
# to reproduce the same document, so they are never retried.

#: Error names (exception class names as they appear in error
#: documents) whose failures are considered transient.
TRANSIENT_ERROR_NAMES = frozenset({
    "WatchdogTimeout",        # wall-clock limit on a loaded machine
    "WorkerDeath",            # worker process died (OOM, signal)
    "BrokenProcessPool",
    "SupervisorTimeout",      # supervisor-side per-point deadline
    "OSError", "IOError", "FileNotFoundError", "PermissionError",
    "BlockingIOError", "InterruptedError", "BrokenPipeError",
    "ConnectionError", "ConnectionResetError", "ConnectionRefusedError",
    "TimeoutError", "EOFError", "MemoryError",
})


def error_family(name: str) -> str:
    """Retry family of an error *name*: ``"transient"`` failures may
    be retried with backoff; ``"deterministic"`` ones never are."""
    return "transient" if name in TRANSIENT_ERROR_NAMES \
        else "deterministic"


def family_for(exc: BaseException) -> str:
    """Retry family of a live exception (isinstance-aware, so an
    ``errno``-carrying OSError subclass classifies correctly even if
    its name is not in the table)."""
    if isinstance(exc, WatchdogTimeout):
        return "transient"
    if isinstance(exc, ReproError):
        return "deterministic"
    if isinstance(exc, (OSError, TimeoutError, EOFError, MemoryError,
                        ConnectionError)):
        return "transient"
    return error_family(type(exc).__name__)


def unexpected_error_document(exc: BaseException,
                              traceback_tail: int = 8) -> dict:
    """Structured document for a *non*-ReproError escaping a worker.

    The blanket ``except Exception`` in sweep workers must hand the
    supervisor something it can classify and ``repro sweeps show`` can
    display: the exception name and message, the retry family, and the
    tail of the traceback (the last ``traceback_tail`` lines — where
    the raise actually happened)."""
    import traceback

    lines = traceback.format_exception(type(exc), exc,
                                       exc.__traceback__)
    tail = "".join(lines).rstrip("\n").split("\n")[-traceback_tail:]
    return {
        "error": type(exc).__name__,
        "message": str(exc),
        "exit_code": 1,
        "family": family_for(exc),
        "traceback": tail,
    }

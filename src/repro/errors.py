"""Exception hierarchy for the uIR reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single type at the top level.  Sub-hierarchies
mirror the pipeline stages: front-end (parsing / lowering), translation
(software IR -> uIR), graph construction, optimization passes,
simulation, and RTL generation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class FrontendError(ReproError):
    """Base class for errors in the MiniC front-end."""


class LexError(FrontendError):
    """Raised when the lexer encounters an unrecognized character."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(FrontendError):
    """Raised on a syntax error in a MiniC program."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class LoweringError(FrontendError):
    """Raised when a MiniC AST cannot be lowered to software IR."""


class IRError(ReproError):
    """Raised on malformed software IR (bad operands, missing blocks...)."""


class TypeMismatchError(IRError):
    """Raised when operand types disagree with an operation's signature."""


class InterpreterError(ReproError):
    """Raised when the reference interpreter hits an invalid state."""


class TranslationError(ReproError):
    """Raised when software IR cannot be translated to a uIR graph."""


class GraphError(ReproError):
    """Raised on structurally invalid uIR graphs (dangling ports...)."""


class ValidationError(GraphError):
    """Raised by the uIR validator; carries the list of violations."""

    def __init__(self, violations):
        self.violations = list(violations)
        summary = "; ".join(self.violations[:5])
        extra = len(self.violations) - 5
        if extra > 0:
            summary += f" (+{extra} more)"
        super().__init__(f"uIR validation failed: {summary}")


class PassError(ReproError):
    """Raised when a uopt pass cannot be applied to a circuit."""


class SimulationError(ReproError):
    """Raised on simulator misconfiguration or runtime failure."""


class DeadlockError(SimulationError):
    """Raised when the simulation makes no progress for too long.

    ``diagnostics`` carries the stall-attributed view of the blocked
    state: a list of dicts, one per live task block, each naming the
    blocked nodes and the *cause* each one is waiting on (taxonomy in
    :mod:`repro.sim.observe`) plus queue/park occupancy — so the
    report says *why* nothing can move, not just that nothing did.
    """

    def __init__(self, cycle: int, detail: str = "",
                 diagnostics=None):
        msg = f"simulation deadlocked at cycle {cycle}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.cycle = cycle
        self.diagnostics = list(diagnostics or [])


class RTLError(ReproError):
    """Raised when uIR cannot be lowered to Chisel/FIRRTL/Verilog."""


class SchedulingError(ReproError):
    """Raised by the HLS baseline when a schedule cannot be formed."""


class WorkloadError(ReproError):
    """Raised when a workload definition or its golden check fails."""

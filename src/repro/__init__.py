"""Reproduction of "uIR: An intermediate representation for transforming
and optimizing the microarchitecture of application accelerators"
(Sharifian et al., MICRO-52, 2019).

The package mirrors the paper's toolflow (Figure 3):

* :mod:`repro.frontend` -- MiniC programs -> LLVM-like software IR ->
  uIR (Stage 1).
* :mod:`repro.core` -- the uIR data structure: hierarchical structural
  graph of task blocks, dataflow nodes, structures, and junctions.
* :mod:`repro.opt` -- uopt pass framework and the paper's optimization
  passes (Stage 2).
* :mod:`repro.sim` -- cycle-level simulator of uIR graphs (our stand-in
  for executing the generated RTL).
* :mod:`repro.rtl` -- lowering to Chisel/FIRRTL/Verilog plus the
  analytic synthesis model (Stage 3).
* :mod:`repro.hls`, :mod:`repro.cpu` -- the HLS and ARM A9 baselines.
* :mod:`repro.workloads` -- the paper's 19 benchmark programs.
* :mod:`repro.bench` -- the experiment harness regenerating every table
  and figure.
"""

__version__ = "0.1.0"

# Convenience top-level API (the quickstart surface).  The Pipeline
# facade is the front door; the hand-wired building blocks below it
# remain public as thin compatibility shims.
from .api import (  # noqa: E402,F401
    Evaluation,
    EvaluationRequest,
    EvaluationResponse,
    Pipeline,
    evaluate,
    evaluate_many,
    execute,
)
from .frontend import compile_minic, translate_module  # noqa: E402,F401
from .frontend.interp import Interpreter, Memory  # noqa: E402,F401
from .sim import (BatchResult, SimParams, simulate,  # noqa: E402,F401
                  simulate_batch)
from .opt import (  # noqa: E402,F401
    PASS_REGISTRY,
    PassManager,
    PassSpec,
    parse_passes,
)
from .rtl import emit_chisel, synthesize  # noqa: E402,F401
from . import telemetry  # noqa: E402,F401

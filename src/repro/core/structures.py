"""Hardware structures and junctions (paper sections 3.2 and 3.4).

Structures encapsulate state with no software representation: local
scratchpads and caches forming the partitioned global address space.
All structures are *views* over the single coherent global memory image
(the paper's address spaces are incoherent with each other but coherent
with DRAM; our workloads never alias one array into two spaces, so a
shared backing image with per-structure timing is behavior-identical).

A :class:`Junction` is the N:1 time-multiplexed request network between
a task's memory nodes and one structure; its ``issue_width`` is the
number of requests it can forward per cycle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import GraphError
from .graph import Node


class Structure:
    """Base class for circuit-level hardware structures."""

    KIND = "structure"

    def __init__(self, name: str):
        self.name = name
        #: Source origins (tuple of provenance.SourceLoc) of the
        #: software accesses this structure serves; metadata only.
        self.provenance: tuple = ()

    def describe(self) -> str:
        return self.KIND

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class Scratchpad(Structure):
    """Software-managed local RAM (DMA-filled before kernel start).

    ``arrays`` lists the global arrays this scratchpad serves; the
    memory-localization pass populates it.  ``shape`` optionally records
    a tensor tile shape so RTL generation can emit wide RAM ports
    (section 6.3: "uIR autogenerates RTL for the appropriate RAMs").
    """

    KIND = "scratchpad"

    def __init__(self, name: str, size_words: int = 16384,
                 banks: int = 1, ports_per_bank: int = 1,
                 latency: int = 1, arrays: Sequence[str] = (),
                 shape: Optional[tuple] = None,
                 write_buffer_entries: int = 0):
        super().__init__(name)
        self.size_words = size_words
        self.banks = banks
        self.ports_per_bank = ports_per_bank
        self.latency = latency
        self.arrays: List[str] = list(arrays)
        self.shape = shape
        #: >0 enables a writeback buffer: stores complete on buffer
        #: entry (with store-to-load forwarding), draining to the
        #: banks in the background (paper Pass 3's "separate
        #: writeback buffer" option).
        self.write_buffer_entries = write_buffer_entries

    @property
    def total_ports(self) -> int:
        return self.banks * self.ports_per_bank

    def describe(self) -> str:
        return (f"scratchpad[{self.size_words}w, {self.banks}b x "
                f"{self.ports_per_bank}p, lat={self.latency}]")


class Cache(Structure):
    """Hardware-managed cache backed by DRAM (the default global path).

    ``ways`` selects associativity (1 = direct mapped); replacement is
    LRU within a set.
    """

    KIND = "cache"

    def __init__(self, name: str, size_words: int = 16384,
                 banks: int = 1, line_words: int = 4,
                 hit_latency: int = 2, ports_per_bank: int = 1,
                 ways: int = 1):
        super().__init__(name)
        if ways < 1:
            raise GraphError(f"cache {name}: bad associativity {ways}")
        self.size_words = size_words
        self.banks = banks
        self.line_words = line_words
        self.hit_latency = hit_latency
        self.ports_per_bank = ports_per_bank
        self.ways = ways

    @property
    def lines_per_bank(self) -> int:
        return max(1, self.size_words // (self.line_words * self.banks))

    @property
    def sets_per_bank(self) -> int:
        return max(1, self.lines_per_bank // self.ways)

    def describe(self) -> str:
        return (f"cache[{self.size_words}w, {self.banks}b, "
                f"{self.ways}way, line={self.line_words}w, "
                f"hit={self.hit_latency}]")


class DRAMModel(Structure):
    """Off-chip memory behind the AXI port."""

    KIND = "dram"

    def __init__(self, name: str = "dram", latency: int = 24,
                 requests_per_cycle: int = 2):
        super().__init__(name)
        self.latency = latency
        self.requests_per_cycle = requests_per_cycle

    def describe(self) -> str:
        return f"dram[lat={self.latency}, bw={self.requests_per_cycle}/cyc]"


#: Counter kinds a :class:`PerfCounterBank` supports and the SimStats
#: quantity each one samples in the analytic flow.
COUNTER_KINDS = (
    "node_fires",          # invocations of a task / fires of a node kind
    "chan_occupancy_hwm",  # producer back-pressure on an output channel
    "bank_conflict",       # serialized requests at one structure's banks
    "arbiter_grant",       # junction arbitration events
)


class CounterSpec:
    """One hardware performance counter: what it counts and where."""

    __slots__ = ("name", "kind", "target", "width")

    def __init__(self, name: str, kind: str, target: str = "",
                 width: int = 32):
        if kind not in COUNTER_KINDS:
            raise GraphError(f"counter {name}: unknown kind {kind!r}")
        self.name = name
        self.kind = kind
        self.target = target
        self.width = width

    def __repr__(self) -> str:
        return (f"CounterSpec({self.name}, {self.kind} -> "
                f"{self.target or '*'})")


class PerfCounterBank(Structure):
    """A bank of free-running hardware performance counters.

    Inserted by the ``perf_counters`` pass as a real uIR structure: it
    lowers to Chisel/Verilog counter registers and is costed by the
    analytic synthesis model (PMUs aren't free).  It is invisible to
    the simulator's timing — instrumentation taps ready/valid and
    arbitration signals without sitting on any path — so adding a bank
    is behavior-neutral by construction.

    ``sample`` recovers the counter values the hardware would hold
    from a finished run's :class:`repro.sim.stats.SimStats` (the
    analytic stand-in for reading the PMU over the AXI-lite port).
    """

    KIND = "perf_counters"

    def __init__(self, name: str, task: str = "",
                 counters: Sequence[CounterSpec] = ()):
        super().__init__(name)
        self.task = task                     # owning task block ("" = global)
        self.counters: List[CounterSpec] = list(counters)

    def add_counter(self, counter: CounterSpec) -> CounterSpec:
        self.counters.append(counter)
        return counter

    @property
    def total_bits(self) -> int:
        return sum(c.width for c in self.counters)

    def describe(self) -> str:
        return (f"perf_counters[{len(self.counters)} x 32b"
                f"{', task=' + self.task if self.task else ''}]")

    def sample(self, stats) -> dict:
        """Counter values for one finished run, keyed by counter name.

        ``chan_occupancy_hwm`` is approximated by the producer's
        accumulated ``downstream_full`` stall cycles (a channel that
        never hit its high-water mark never back-pressured);
        ``arbiter_grant`` / ``bank_conflict`` read the per-site
        arbitration counters.
        """
        values = {}
        for c in self.counters:
            if c.kind == "node_fires":
                if c.target == "@task":
                    values[c.name] = stats.invocations.get(self.task, 0)
                else:
                    values[c.name] = stats.node_fires.get(c.target, 0)
            elif c.kind == "chan_occupancy_hwm":
                per_node = stats.node_stalls.get(c.target, {})
                values[c.name] = per_node.get("downstream_full", 0)
            elif c.kind == "bank_conflict":
                values[c.name] = stats.site_stalls.get(
                    f"structure:{c.target}", 0)
            elif c.kind == "arbiter_grant":
                values[c.name] = stats.junction_grants.get(c.target, 0)
        return values


class Junction:
    """N:1 (requests) / 1:N (responses) network between memory nodes of
    one task and one structure (Figure 7)."""

    def __init__(self, name: str, structure: Structure,
                 issue_width: int = 1):
        self.name = name
        self.structure = structure
        self.issue_width = issue_width
        self.clients: List[Node] = []

    def attach(self, node: Node) -> None:
        if node.kind not in ("load", "store"):
            raise GraphError(
                f"junction {self.name}: only load/store nodes attach, "
                f"got {node.kind}")
        if node in self.clients:
            return
        self.clients.append(node)
        node.junction_index = -1  # fixed up by TaskBlock.reindex

    def detach(self, node: Node) -> None:
        self.clients.remove(node)

    @property
    def n_read(self) -> int:
        return sum(1 for n in self.clients if n.kind == "load")

    @property
    def n_write(self) -> int:
        return sum(1 for n in self.clients if n.kind == "store")

    def describe(self) -> str:
        return (f"junction(R={self.n_read}, W={self.n_write}) "
                f"-> {self.structure.name}")

    def __repr__(self) -> str:
        return f"Junction({self.name}, {self.describe()})"

"""Hardware structures and junctions (paper sections 3.2 and 3.4).

Structures encapsulate state with no software representation: local
scratchpads and caches forming the partitioned global address space.
All structures are *views* over the single coherent global memory image
(the paper's address spaces are incoherent with each other but coherent
with DRAM; our workloads never alias one array into two spaces, so a
shared backing image with per-structure timing is behavior-identical).

A :class:`Junction` is the N:1 time-multiplexed request network between
a task's memory nodes and one structure; its ``issue_width`` is the
number of requests it can forward per cycle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import GraphError
from .graph import Node


class Structure:
    """Base class for circuit-level hardware structures."""

    KIND = "structure"

    def __init__(self, name: str):
        self.name = name

    def describe(self) -> str:
        return self.KIND

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class Scratchpad(Structure):
    """Software-managed local RAM (DMA-filled before kernel start).

    ``arrays`` lists the global arrays this scratchpad serves; the
    memory-localization pass populates it.  ``shape`` optionally records
    a tensor tile shape so RTL generation can emit wide RAM ports
    (section 6.3: "uIR autogenerates RTL for the appropriate RAMs").
    """

    KIND = "scratchpad"

    def __init__(self, name: str, size_words: int = 16384,
                 banks: int = 1, ports_per_bank: int = 1,
                 latency: int = 1, arrays: Sequence[str] = (),
                 shape: Optional[tuple] = None,
                 write_buffer_entries: int = 0):
        super().__init__(name)
        self.size_words = size_words
        self.banks = banks
        self.ports_per_bank = ports_per_bank
        self.latency = latency
        self.arrays: List[str] = list(arrays)
        self.shape = shape
        #: >0 enables a writeback buffer: stores complete on buffer
        #: entry (with store-to-load forwarding), draining to the
        #: banks in the background (paper Pass 3's "separate
        #: writeback buffer" option).
        self.write_buffer_entries = write_buffer_entries

    @property
    def total_ports(self) -> int:
        return self.banks * self.ports_per_bank

    def describe(self) -> str:
        return (f"scratchpad[{self.size_words}w, {self.banks}b x "
                f"{self.ports_per_bank}p, lat={self.latency}]")


class Cache(Structure):
    """Hardware-managed cache backed by DRAM (the default global path).

    ``ways`` selects associativity (1 = direct mapped); replacement is
    LRU within a set.
    """

    KIND = "cache"

    def __init__(self, name: str, size_words: int = 16384,
                 banks: int = 1, line_words: int = 4,
                 hit_latency: int = 2, ports_per_bank: int = 1,
                 ways: int = 1):
        super().__init__(name)
        if ways < 1:
            raise GraphError(f"cache {name}: bad associativity {ways}")
        self.size_words = size_words
        self.banks = banks
        self.line_words = line_words
        self.hit_latency = hit_latency
        self.ports_per_bank = ports_per_bank
        self.ways = ways

    @property
    def lines_per_bank(self) -> int:
        return max(1, self.size_words // (self.line_words * self.banks))

    @property
    def sets_per_bank(self) -> int:
        return max(1, self.lines_per_bank // self.ways)

    def describe(self) -> str:
        return (f"cache[{self.size_words}w, {self.banks}b, "
                f"{self.ways}way, line={self.line_words}w, "
                f"hit={self.hit_latency}]")


class DRAMModel(Structure):
    """Off-chip memory behind the AXI port."""

    KIND = "dram"

    def __init__(self, name: str = "dram", latency: int = 24,
                 requests_per_cycle: int = 2):
        super().__init__(name)
        self.latency = latency
        self.requests_per_cycle = requests_per_cycle

    def describe(self) -> str:
        return f"dram[lat={self.latency}, bw={self.requests_per_cycle}/cyc]"


class Junction:
    """N:1 (requests) / 1:N (responses) network between memory nodes of
    one task and one structure (Figure 7)."""

    def __init__(self, name: str, structure: Structure,
                 issue_width: int = 1):
        self.name = name
        self.structure = structure
        self.issue_width = issue_width
        self.clients: List[Node] = []

    def attach(self, node: Node) -> None:
        if node.kind not in ("load", "store"):
            raise GraphError(
                f"junction {self.name}: only load/store nodes attach, "
                f"got {node.kind}")
        if node in self.clients:
            return
        self.clients.append(node)
        node.junction_index = -1  # fixed up by TaskBlock.reindex

    def detach(self, node: Node) -> None:
        self.clients.remove(node)

    @property
    def n_read(self) -> int:
        return sum(1 for n in self.clients if n.kind == "load")

    @property
    def n_write(self) -> int:
        return sum(1 for n in self.clients if n.kind == "store")

    def describe(self) -> str:
        return (f"junction(R={self.n_read}, W={self.n_write}) "
                f"-> {self.structure.name}")

    def __repr__(self) -> str:
        return f"Junction({self.name}, {self.describe()})"

"""Whole-accelerator circuit: task blocks, task edges, structures.

This is the top level of the uIR hierarchy (paper section 3.2): a
concurrent graph of task blocks connected by ``<||>`` task interfaces
and, through junctions, ``<==>`` request/response interfaces to memory
structures.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import GraphError
from ..types import Type
from .graph import Dataflow, Node
from .structures import Cache, DRAMModel, Junction, Scratchpad, Structure


class TaskBlock:
    """An asynchronous execution block with a local task queue.

    ``kind`` is ``"func"`` (one invocation = run dataflow once),
    ``"loop"`` (an extracted loop: the loop-control node streams the
    iterations of one invocation through the pipelined body), or
    ``"root"``.  ``num_tiles`` is the execution-tiling degree
    (section 6.2); ``queue_depth`` sizes the hardware issue queue.
    """

    def __init__(self, name: str, kind: str = "func"):
        if kind not in ("func", "loop", "root"):
            raise GraphError(f"bad task kind {kind!r}")
        self.name = name
        self.kind = kind
        self.dataflow = Dataflow(name)
        self.live_in_types: List[Type] = []
        self.live_out_types: List[Type] = []
        self.num_tiles = 1
        self.queue_depth = 8
        self.junctions: List[Junction] = []
        # Loop metadata (loop tasks only).
        self.is_parallel_loop = False

    # -- junction management ---------------------------------------------
    def add_junction(self, junction: Junction) -> Junction:
        self.junctions.append(junction)
        self.reindex_junctions()
        return junction

    def remove_junction(self, junction: Junction) -> None:
        if junction.clients:
            raise GraphError(
                f"junction {junction.name} still has clients")
        self.junctions.remove(junction)
        self.reindex_junctions()

    def reindex_junctions(self) -> None:
        for idx, junction in enumerate(self.junctions):
            for client in junction.clients:
                client.junction_index = idx

    def junction_of(self, node: Node) -> Junction:
        for junction in self.junctions:
            if node in junction.clients:
                return junction
        raise GraphError(
            f"memory node {node.name} of task {self.name} is not "
            f"attached to any junction")

    def memory_nodes(self) -> List[Node]:
        return [n for n in self.dataflow.nodes
                if n.kind in ("load", "store")]

    def call_sites(self) -> List[Node]:
        return [n for n in self.dataflow.nodes
                if n.kind in ("call", "spawn")]

    def stats(self) -> Dict[str, int]:
        s = self.dataflow.stats()
        s["junctions"] = len(self.junctions)
        s["tiles"] = self.num_tiles
        return s

    def __repr__(self) -> str:
        return (f"TaskBlock({self.name}, {self.kind}, "
                f"{len(self.dataflow.nodes)} nodes, "
                f"tiles={self.num_tiles})")


class TaskEdge:
    """Parent-child ``<||>`` connection between two task blocks.

    ``decoupled`` inserts a deep FIFO on the interface so the parent
    can run far ahead of the child (uopt Pass 1, Task Pipelining);
    coupled edges model the baseline's shallow two-entry buffer.
    """

    def __init__(self, parent: str, child: str, kind: str = "call",
                 queue_depth: int = 2, decoupled: bool = False):
        if kind not in ("call", "spawn"):
            raise GraphError(f"bad task edge kind {kind!r}")
        self.parent = parent
        self.child = child
        self.kind = kind
        self.queue_depth = queue_depth
        self.decoupled = decoupled

    def __repr__(self) -> str:
        mark = "<||deep>" if self.decoupled else "<||>"
        return f"TaskEdge({self.parent} {mark} {self.child}, {self.kind})"


class AcceleratorCircuit:
    """The whole accelerator as a structural, concurrent graph."""

    def __init__(self, name: str):
        self.name = name
        self.tasks: Dict[str, TaskBlock] = {}
        self.task_edges: List[TaskEdge] = []
        self.structures: List[Structure] = []
        self.dram = DRAMModel()
        self.root: Optional[str] = None
        # Which structure serves each global array (routing for the
        # simulator and the memory-localization pass); arrays absent
        # from the map use the default cache.
        self.array_home: Dict[str, Structure] = {}
        # Global array layout (name -> (base_word, size_words)),
        # mirrored from the software module so passes can reason about
        # address ranges without the front-end.
        self.array_layout: Dict[str, tuple] = {}
        # Clock target used by fusion/retiming (ns).
        self.clock_period_ns = 2.5

    # -- construction ------------------------------------------------------
    def add_task(self, task: TaskBlock) -> TaskBlock:
        if task.name in self.tasks:
            raise GraphError(f"duplicate task {task.name}")
        self.tasks[task.name] = task
        if self.root is None:
            self.root = task.name
        return task

    def add_structure(self, structure: Structure) -> Structure:
        if any(s.name == structure.name for s in self.structures):
            raise GraphError(f"duplicate structure {structure.name}")
        self.structures.append(structure)
        return structure

    def add_task_edge(self, edge: TaskEdge) -> TaskEdge:
        if edge.parent not in self.tasks or edge.child not in self.tasks:
            raise GraphError(f"task edge references unknown task: {edge}")
        self.task_edges.append(edge)
        return edge

    # -- queries ---------------------------------------------------------
    def task(self, name: str) -> TaskBlock:
        try:
            return self.tasks[name]
        except KeyError:
            raise GraphError(f"no task named {name!r}")

    @property
    def root_task(self) -> TaskBlock:
        if self.root is None:
            raise GraphError("circuit has no tasks")
        return self.tasks[self.root]

    def structure(self, name: str) -> Structure:
        for s in self.structures:
            if s.name == name:
                return s
        raise GraphError(f"no structure named {name!r}")

    @property
    def default_cache(self) -> Cache:
        for s in self.structures:
            if isinstance(s, Cache):
                return s
        raise GraphError("circuit has no cache structure")

    def scratchpads(self) -> List[Scratchpad]:
        return [s for s in self.structures if isinstance(s, Scratchpad)]

    def edges_from(self, parent: str) -> List[TaskEdge]:
        return [e for e in self.task_edges if e.parent == parent]

    def edge_between(self, parent: str, child: str) -> Optional[TaskEdge]:
        for e in self.task_edges:
            if e.parent == parent and e.child == child:
                return e
        return None

    def children(self, parent: str) -> List[TaskBlock]:
        return [self.tasks[e.child] for e in self.edges_from(parent)]

    def all_nodes(self) -> Iterator[Node]:
        for task in self.tasks.values():
            yield from task.dataflow.nodes

    def home_of(self, array: str) -> Structure:
        return self.array_home.get(array, self.default_cache)

    def stats(self) -> Dict[str, int]:
        nodes = sum(len(t.dataflow.nodes) for t in self.tasks.values())
        edges = sum(len(t.dataflow.connections)
                    for t in self.tasks.values())
        return {
            "tasks": len(self.tasks),
            "task_edges": len(self.task_edges),
            "nodes": nodes,
            "connections": edges,
            "structures": len(self.structures),
            "junctions": sum(len(t.junctions)
                             for t in self.tasks.values()),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (f"AcceleratorCircuit({self.name}, tasks={s['tasks']}, "
                f"nodes={s['nodes']}, structures={s['structures']})")

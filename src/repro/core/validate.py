"""Structural validation of uIR circuits.

Validation runs after translation and after every uopt pass (the
latency-insensitive interfaces make pass composition safe only if the
structure stays well-formed, paper "Composability").
"""

from __future__ import annotations

from typing import List

from ..errors import GraphError, ValidationError
from ..types import BoolType
from .circuit import AcceleratorCircuit, TaskBlock
from .graph import Node


def validate_circuit(circuit: AcceleratorCircuit,
                     raise_on_error: bool = True) -> List[str]:
    """Check structural invariants; returns the violation list."""
    problems: List[str] = []
    for task in circuit.tasks.values():
        problems.extend(_validate_task(circuit, task))
    problems.extend(_validate_task_edges(circuit))
    for junction_owner in circuit.tasks.values():
        for junction in junction_owner.junctions:
            if junction.structure not in circuit.structures:
                problems.append(
                    f"{junction_owner.name}: junction {junction.name} "
                    f"targets structure {junction.structure.name} not in "
                    f"circuit")
    if problems and raise_on_error:
        raise ValidationError(problems)
    return problems


def _validate_task(circuit: AcceleratorCircuit,
                   task: TaskBlock) -> List[str]:
    problems: List[str] = []
    df = task.dataflow

    # Every mandatory input port driven; types agree across connections.
    for node in df.nodes:
        for port in node.inputs:
            if port.incoming is None:
                if _optional_port(node, port.name):
                    continue
                problems.append(
                    f"{task.name}/{node.name}: input port {port.name} "
                    f"not driven")
        for port in node.outputs:
            for conn in port.outgoing:
                if not _types_compatible(conn.src.type, conn.dst.type):
                    problems.append(
                        f"{task.name}: type mismatch on "
                        f"{conn.src.label()} ({conn.src.type}) -> "
                        f"{conn.dst.label()} ({conn.dst.type})")

    # Live-in/out indices match the task signature.
    liveins = sorted((n for n in df.nodes if n.kind == "livein"),
                     key=lambda n: n.index)
    for n in liveins:
        if n.index >= len(task.live_in_types):
            problems.append(
                f"{task.name}: livein index {n.index} out of range")
        elif n.out.type != task.live_in_types[n.index]:
            problems.append(
                f"{task.name}: livein{n.index} type {n.out.type} != "
                f"signature {task.live_in_types[n.index]}")
    liveouts = [n for n in df.nodes if n.kind == "liveout"]
    seen_out = set()
    for n in liveouts:
        if n.index in seen_out:
            problems.append(
                f"{task.name}: duplicate liveout index {n.index}")
        seen_out.add(n.index)
        if n.index >= len(task.live_out_types):
            problems.append(
                f"{task.name}: liveout index {n.index} out of range")

    # Memory nodes attach to exactly one junction of this task.
    junction_members = set()
    for junction in task.junctions:
        for client in junction.clients:
            if id(client) in junction_members:
                problems.append(
                    f"{task.name}: {client.name} attached to two "
                    f"junctions")
            junction_members.add(id(client))
    for node in task.memory_nodes():
        if id(node) not in junction_members:
            problems.append(
                f"{task.name}: memory node {node.name} not attached to "
                f"a junction")

    # Loop tasks need exactly one loop-control node.
    n_loopctl = len(df.nodes_of_kind("loopctl"))
    if task.kind == "loop" and n_loopctl != 1:
        problems.append(
            f"{task.name}: loop task has {n_loopctl} loop-control nodes")
    if task.kind != "loop" and n_loopctl:
        problems.append(
            f"{task.name}: non-loop task has a loop-control node")

    # No combinational cycles apart from phi back-edges.
    try:
        df.topological_order()
    except GraphError as exc:
        problems.append(str(exc))

    # Call/spawn targets exist and arities match.
    for node in task.call_sites():
        if node.callee not in circuit.tasks:
            problems.append(
                f"{task.name}: {node.name} targets unknown task "
                f"{node.callee!r}")
            continue
        callee = circuit.tasks[node.callee]
        if len(node.arg_ports) != len(callee.live_in_types):
            problems.append(
                f"{task.name}: {node.name} passes "
                f"{len(node.arg_ports)} args, task {callee.name} takes "
                f"{len(callee.live_in_types)}")
    return problems


def _validate_task_edges(circuit: AcceleratorCircuit) -> List[str]:
    problems: List[str] = []
    edge_pairs = {(e.parent, e.child) for e in circuit.task_edges}
    for task in circuit.tasks.values():
        for node in task.call_sites():
            if node.callee in circuit.tasks and \
                    (task.name, node.callee) not in edge_pairs:
                problems.append(
                    f"missing task edge {task.name} -> {node.callee} "
                    f"for {node.name}")
    for parent, child in edge_pairs:
        owner = circuit.tasks[parent]
        if not any(n.callee == child for n in owner.call_sites()):
            problems.append(
                f"task edge {parent} -> {child} has no call/spawn site")
    return problems


def _optional_port(node: Node, port_name: str) -> bool:
    if port_name in ("pred", "order"):
        return True
    if node.kind == "loopctl" and port_name == "cont":
        return not node.conditional
    return False


def _types_compatible(src, dst) -> bool:
    if src == dst:
        return True
    # A one-bit predicate may feed an integer port and vice versa (the
    # RTL zero-extends); everything else must match exactly.
    if isinstance(src, BoolType) or isinstance(dst, BoolType):
        return not (src.is_tensor or dst.is_tensor)
    return src.bits == dst.bits and src.is_tensor == dst.is_tensor

"""Source provenance for uIR nodes and structures.

Every uIR node (and the structures derived from memory nodes) carries
a tuple of :class:`SourceLoc` records tracing it back to the MiniC
source that produced it: file, line, and the enclosing task/loop
context.  Passes preserve provenance across rewrites — a fused
operator records the *set* of origins of its members — so stall
attribution, deadlock reports and the bottleneck analyzer can say
``gemm.mc:14 (loop j)`` instead of ``node_237``.

Provenance is metadata only: it never affects simulation behavior,
validation, or synthesis cost.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple


@dataclass(frozen=True, order=True)
class SourceLoc:
    """One source origin: ``file:line`` plus the enclosing context."""

    file: str = ""
    line: int = 0
    context: str = ""      # enclosing task / loop / function name

    def label(self) -> str:
        """Human-readable ``gemm.mc:14 (loop_j)`` form."""
        if not (self.file or self.line or self.context):
            return ""
        base = os.path.basename(self.file) if self.file else "<unknown>"
        text = f"{base}:{self.line}" if self.line else base
        if self.context:
            text += f" ({self.context})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {"file": self.file, "line": self.line,
                "context": self.context}

    @classmethod
    def from_dict(cls, d: Dict) -> "SourceLoc":
        return cls(file=d.get("file", ""), line=int(d.get("line", 0)),
                   context=d.get("context", ""))

    def __str__(self) -> str:
        return self.label()


def merge_provenance(*sources: Iterable[SourceLoc]) \
        -> Tuple[SourceLoc, ...]:
    """Union of several provenance tuples, deduplicated and ordered.

    Used when a pass collapses several nodes into one (op fusion,
    tensor tiling): the result records every origin.
    """
    seen = set()
    merged = []
    for source in sources:
        for loc in source or ():
            if loc not in seen:
                seen.add(loc)
                merged.append(loc)
    merged.sort()
    return tuple(merged)


def provenance_label(provenance: Tuple[SourceLoc, ...]) -> str:
    """Compact display label for a node's provenance (empty if none)."""
    if not provenance:
        return ""
    if len(provenance) == 1:
        return provenance[0].label()
    return provenance[0].label() + f" (+{len(provenance) - 1} more)"

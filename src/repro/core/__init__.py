"""uIR: the paper's microarchitectural intermediate representation.

An :class:`AcceleratorCircuit` is a hierarchical, latency-insensitive
structural graph (paper section 3):

* whole-accelerator level: :class:`TaskBlock`s joined by task edges
  (``<||>`` spawn/call interfaces) and memory edges (``<==>``
  request/response interfaces) to hardware :class:`Structure`s
  (scratchpads, caches) through :class:`Junction`s;
* task level: a pipelined dataflow of typed :class:`Node`s joined by
  ready/valid :class:`Connection`s.
"""

from .oplib import OpInfo, op_info  # noqa: F401
from .graph import Connection, Dataflow, Node, Port  # noqa: F401
from .nodes import (  # noqa: F401
    CallNode,
    ComputeNode,
    ConstNode,
    LiveIn,
    LiveOut,
    LoadNode,
    LoopControl,
    PhiNode,
    SelectNode,
    SpawnNode,
    StoreNode,
    TensorComputeNode,
)
from .provenance import (  # noqa: F401
    SourceLoc,
    merge_provenance,
    provenance_label,
)
from .structures import (  # noqa: F401
    Cache,
    CounterSpec,
    DRAMModel,
    Junction,
    PerfCounterBank,
    Scratchpad,
    Structure,
)
from .circuit import AcceleratorCircuit, TaskBlock, TaskEdge  # noqa: F401
from .validate import validate_circuit  # noqa: F401

"""Concrete uIR dataflow node kinds (paper section 3.3-3.5).

Every node is a function unit with typed ports.  Side-effecting nodes
(loads, stores, calls, spawns) carry an optional ``pred`` input for
dataflow predication: a false predicate bypasses the operation and
poisons/suppresses the effect.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..errors import GraphError
from ..types import BOOL, I32, VOID, TensorType, Type
from .graph import Node, Port
from .oplib import OpInfo, op_info

# An operand of a fused expression: external input index or prior expr.
FusedRef = Tuple[str, int]  # ("in", i) | ("expr", i)


class LiveIn(Node):
    """Task live-in: argument ``index`` of the task invocation."""

    KIND = "livein"

    def __init__(self, index: int, type_: Type, name: str = ""):
        super().__init__(name or f"livein{index}")
        self.index = index
        self.out = self.add_out("out", type_)

    def describe(self) -> str:
        return f"livein[{self.index}]:{self.out.type}"


class LiveOut(Node):
    """Task live-out: result ``index`` returned to the parent."""

    KIND = "liveout"

    def __init__(self, index: int, type_: Type, name: str = ""):
        super().__init__(name or f"liveout{index}")
        self.index = index
        self.inp = self.add_in("in", type_)

    def describe(self) -> str:
        return f"liveout[{self.index}]:{self.inp.type}"


class ConstNode(Node):
    """A constant source; emits its value on demand."""

    KIND = "const"

    def __init__(self, value, type_: Type, name: str = ""):
        super().__init__(name or f"const_{value}")
        self.value = value
        self.out = self.add_out("out", type_)

    def describe(self) -> str:
        return f"const {self.value}:{self.out.type}"


class ComputeNode(Node):
    """A function unit for one scalar (or tensor) operation."""

    KIND = "compute"

    def __init__(self, op: str, type_: Type, arity: int = 2,
                 name: str = "", operand_types: Sequence[Type] = ()):
        super().__init__(name or op)
        self.op = op
        if operand_types:
            in_types = list(operand_types)
        else:
            in_types = [type_] * arity
        port_names = ["a", "b", "c"]
        self.in_ports = [self.add_in(port_names[i], t)
                         for i, t in enumerate(in_types)]
        self.out = self.add_out("out", type_)
        # GEP scale factor (element size in words), used by semantics.
        self.gep_scale: int = 1

    @property
    def info(self) -> OpInfo:
        return op_info(self.op, self.out.type)

    def describe(self) -> str:
        return f"{self.op}:{self.out.type}"


class TensorComputeNode(ComputeNode):
    """A higher-order tensor function unit (section 6.3, Figure 14)."""

    KIND = "tensor"

    def __init__(self, op: str, type_: TensorType, arity: int = 2,
                 name: str = "", operand_types: Sequence[Type] = ()):
        if not isinstance(type_, TensorType):
            raise GraphError(f"tensor node requires TensorType, got {type_}")
        super().__init__(op, type_, arity, name,
                         operand_types=operand_types)


class FusedComputeNode(Node):
    """Several fusable ops retimed into one pipeline stage (section 6.1).

    ``exprs`` is a tiny expression DAG evaluated in one node firing:
    each entry is ``(op, [refs], result_type, gep_scale)`` with refs
    pointing at external inputs (``("in", i)``) or earlier entries
    (``("expr", i)``); the node's output is the last entry's value.
    """

    KIND = "fused"

    def __init__(self, name: str, in_types: Sequence[Type],
                 out_type: Type,
                 exprs: List[Tuple[str, List[FusedRef], Type, int]],
                 fused_names: Sequence[str] = ()):
        super().__init__(name)
        self.in_ports = [self.add_in(f"in{i}", t)
                         for i, t in enumerate(in_types)]
        self.out = self.add_out("out", out_type)
        self.exprs = exprs
        self.fused_names = list(fused_names)
        self.latency = 1
        self.delay_ns = sum(op_info(op, t).delay_ns
                            for op, _refs, t, _s in exprs)

    def describe(self) -> str:
        ops = "+".join(op for op, _r, _t, _s in self.exprs)
        return f"fused({ops}):{self.out.type}"


class SelectNode(Node):
    """2-way multiplexer (dataflow predication merge point)."""

    KIND = "select"

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(name or "select")
        self.cond = self.add_in("cond", BOOL)
        self.a = self.add_in("a", type_)
        self.b = self.add_in("b", type_)
        self.out = self.add_out("out", type_)

    def describe(self) -> str:
        return f"select:{self.out.type}"


class PhiNode(Node):
    """Loop-carried value: iteration 0 takes ``init``, then ``back``.

    ``out`` streams the per-iteration value; ``final`` emits once, at
    loop completion, carrying the value produced by the last iteration
    (the loop's live-out).
    """

    KIND = "phi"

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(name or "phi")
        self.init = self.add_in("init", type_)
        self.back = self.add_in("back", type_)
        self.out = self.add_out("out", type_)
        self.final = self.add_out("final", type_)

    def describe(self) -> str:
        return f"phi:{self.out.type}"


class LoopControl(Node):
    """Iteration sequencer for a loop task (section 3.5).

    Counted mode streams indices ``start, start+step, ...`` while
    ``index < bound``.  Conditional mode (general loops) additionally
    consumes a per-iteration ``cont`` token from the body and stops on
    the first False.

    ``pipeline_stages`` models the control recurrence
    (buffer -> phi -> increment -> compare -> branch, the paper's Pass 5
    example): consecutive iterations issue at least that many cycles
    apart.  The OpFusion pass retimes it down to 1.
    ``max_in_flight`` bounds concurrent iterations in the body pipeline
    (1 serializes iterations, e.g. loop-carried memory accumulators).
    """

    KIND = "loopctl"

    def __init__(self, name: str = "loopctl", conditional: bool = False):
        super().__init__(name)
        self.start = self.add_in("start", I32)
        self.bound = self.add_in("bound", I32)
        self.step = self.add_in("step", I32)
        self.index = self.add_out("index", I32)
        self.active = self.add_out("active", BOOL)   # one True/iteration
        self.done = self.add_out("done", BOOL)       # once, at loop end
        self.final = self.add_out("final", I32)      # final index value
        self.conditional = conditional
        self.cont: Optional[Port] = (
            self.add_in("cont", BOOL) if conditional else None)
        # Baseline control path: buffer -> phi -> i++ -> compare ->
        # branch (the paper's five-stage Pass-5 example).
        self.pipeline_stages: int = 5
        self.max_in_flight: int = 64

    def describe(self) -> str:
        return "loopctl(cond)" if self.conditional else "loopctl"


class LoadNode(Node):
    """Memory load transit node with an internal databox (section 3.4).

    The databox widens a typed access into ``type.words`` parallel word
    transactions and coalesces responses.  ``max_outstanding`` bounds
    in-flight requests (in-order completion per node).
    """

    KIND = "load"

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(name or "load")
        self.addr = self.add_in("addr", I32)
        self.out = self.add_out("out", type_)
        self.done = self.add_out("done", BOOL)
        self.pred: Optional[Port] = None
        self.order_in: Optional[Port] = None
        self.max_outstanding = 4
        self.junction_index: int = -1   # set by task wiring / passes
        self.array: Optional[str] = None  # points-to result (if known)

    def enable_predicate(self) -> Port:
        if self.pred is None:
            self.pred = self.add_in("pred", BOOL)
        return self.pred

    def enable_order_in(self) -> Port:
        if self.order_in is None:
            self.order_in = self.add_in("order", BOOL)
        return self.order_in

    def describe(self) -> str:
        return f"load:{self.out.type}"


class StoreNode(Node):
    """Memory store transit node; ``done`` signals write completion."""

    KIND = "store"

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(name or "store")
        self.addr = self.add_in("addr", I32)
        self.data = self.add_in("data", type_)
        self.done = self.add_out("done", BOOL)
        self.pred: Optional[Port] = None
        self.order_in: Optional[Port] = None
        self.max_outstanding = 4
        self.junction_index: int = -1
        self.value_type = type_
        self.array: Optional[str] = None

    def enable_predicate(self) -> Port:
        if self.pred is None:
            self.pred = self.add_in("pred", BOOL)
        return self.pred

    def enable_order_in(self) -> Port:
        if self.order_in is None:
            self.order_in = self.add_in("order", BOOL)
        return self.order_in

    def describe(self) -> str:
        return f"store:{self.value_type}"


class CallNode(Node):
    """Request/response interface to a child task block (nested loops,
    function calls).  A variable-latency non-deterministic node from the
    parent dataflow's perspective (section 3.3)."""

    KIND = "call"

    def __init__(self, callee: str, arg_types: Sequence[Type],
                 ret_types: Union[Type, Sequence[Type]], name: str = ""):
        super().__init__(name or f"call_{callee}")
        self.callee = callee
        self.arg_ports = [self.add_in(f"arg{i}", t)
                          for i, t in enumerate(arg_types)]
        if isinstance(ret_types, Type):
            ret_types = [] if ret_types == VOID else [ret_types]
        self.ret_ports = [self.add_out(f"ret{i}", t)
                          for i, t in enumerate(ret_types)]
        self.pred: Optional[Port] = None
        # Ordering chain for memory dependences between sibling tasks.
        self.order_in: Optional[Port] = None
        self.order_out = self.add_out("done", BOOL)
        # serialize=True -> at most one invocation in flight (self-
        # conflicting callees, e.g. in-place FFT stages).
        self.serialize = False
        self.max_outstanding = 8

    def enable_predicate(self) -> Port:
        if self.pred is None:
            self.pred = self.add_in("pred", BOOL)
        return self.pred

    def enable_order_in(self) -> Port:
        if self.order_in is None:
            self.order_in = self.add_in("order", BOOL)
        return self.order_in

    def describe(self) -> str:
        return f"call @{self.callee}"


class SpawnNode(Node):
    """Fire-and-forget task creation (<||> interface, Cilk spawn)."""

    KIND = "spawn"

    def __init__(self, callee: str, arg_types: Sequence[Type],
                 name: str = ""):
        super().__init__(name or f"spawn_{callee}")
        self.callee = callee
        self.arg_ports = [self.add_in(f"arg{i}", t)
                          for i, t in enumerate(arg_types)]
        self.issued = self.add_out("issued", BOOL)
        self.pred: Optional[Port] = None
        self.order_in: Optional[Port] = None

    def enable_predicate(self) -> Port:
        if self.pred is None:
            self.pred = self.add_in("pred", BOOL)
        return self.pred

    def enable_order_in(self) -> Port:
        if self.order_in is None:
            self.order_in = self.add_in("order", BOOL)
        return self.order_in

    def describe(self) -> str:
        return f"spawn @{self.callee}"


class SyncNode(Node):
    """Cilk sync: emits ``done`` once every task spawned by this
    invocation has completed (the join half of the <||> interface)."""

    KIND = "sync"

    def __init__(self, name: str = "sync"):
        super().__init__(name)
        self.order_in: Optional[Port] = None
        self.done = self.add_out("done", BOOL)

    def enable_order_in(self) -> Port:
        if self.order_in is None:
            self.order_in = self.add_in("order", BOOL)
        return self.order_in

    def describe(self) -> str:
        return "sync"


#: Node kinds with memory side effects (clients of junctions).
MEMORY_NODE_KINDS = ("load", "store")

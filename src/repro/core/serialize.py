"""Serialization of uIR circuits: JSON round-trip and Graphviz export.

The JSON form captures the full structural graph (tasks, nodes, typed
ports, connections with their buffering attributes, junctions,
structures, task edges and array layout) so circuits can be saved,
diffed, and reloaded without re-running the front-end.  ``to_dot``
renders the hierarchy for inspection (one cluster per task block).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..errors import GraphError
from ..types import Type, parse_type
from .circuit import AcceleratorCircuit, TaskBlock, TaskEdge
from .graph import Dataflow, Node
from .nodes import (
    CallNode,
    ComputeNode,
    ConstNode,
    FusedComputeNode,
    LiveIn,
    LiveOut,
    LoadNode,
    LoopControl,
    PhiNode,
    SelectNode,
    SpawnNode,
    StoreNode,
    SyncNode,
    TensorComputeNode,
)
from .provenance import SourceLoc, provenance_label
from .structures import (
    Cache,
    CounterSpec,
    DRAMModel,
    Junction,
    PerfCounterBank,
    Scratchpad,
)

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Node encoding/decoding
# ---------------------------------------------------------------------------

def _node_to_dict(node: Node) -> Dict:
    d: Dict = {"kind": node.kind, "name": node.name}
    if node.kind in ("compute", "tensor"):
        d["op"] = node.op
        d["type"] = str(node.out.type)
        d["operand_types"] = [str(p.type) for p in node.in_ports]
        d["gep_scale"] = node.gep_scale
    elif node.kind == "fused":
        d["in_types"] = [str(p.type) for p in node.in_ports]
        d["out_type"] = str(node.out.type)
        d["exprs"] = [[op, refs, str(t), scale]
                      for op, refs, t, scale in node.exprs]
        d["fused_names"] = node.fused_names
    elif node.kind == "const":
        d["value"] = node.value
        d["type"] = str(node.out.type)
    elif node.kind == "livein":
        d["index"] = node.index
        d["type"] = str(node.out.type)
    elif node.kind == "liveout":
        d["index"] = node.index
        d["type"] = str(node.inp.type)
    elif node.kind == "select":
        d["type"] = str(node.out.type)
    elif node.kind == "phi":
        d["type"] = str(node.out.type)
    elif node.kind == "loopctl":
        d["conditional"] = node.conditional
        d["pipeline_stages"] = node.pipeline_stages
        d["max_in_flight"] = node.max_in_flight
    elif node.kind == "load":
        d["type"] = str(node.out.type)
        d["array"] = node.array
        d["max_outstanding"] = node.max_outstanding
    elif node.kind == "store":
        d["type"] = str(node.value_type)
        d["array"] = node.array
        d["max_outstanding"] = node.max_outstanding
    elif node.kind in ("call", "spawn"):
        d["callee"] = node.callee
        d["arg_types"] = [str(p.type) for p in node.arg_ports]
        if node.kind == "call":
            d["ret_types"] = [str(p.type) for p in node.ret_ports]
            d["serialize"] = node.serialize
            d["max_outstanding"] = node.max_outstanding
    elif node.kind == "sync":
        pass
    else:
        raise GraphError(f"cannot serialize node kind {node.kind!r}")
    if node.provenance:
        d["provenance"] = [loc.to_dict() for loc in node.provenance]
    return d


def _node_from_dict(d: Dict) -> Node:
    kind = d["kind"]
    name = d["name"]
    node = _node_from_dict_inner(d, kind, name)
    if "tuned_width" in d:
        node.tuned_width = d["tuned_width"]
    if "provenance" in d:
        node.provenance = tuple(SourceLoc.from_dict(p)
                                for p in d["provenance"])
    return node


def _node_from_dict_inner(d: Dict, kind: str, name: str) -> Node:
    if kind in ("compute", "tensor"):
        cls = TensorComputeNode if kind == "tensor" else ComputeNode
        node = cls(d["op"], parse_type(d["type"]),
                   arity=len(d["operand_types"]), name=name,
                   operand_types=[parse_type(t)
                                  for t in d["operand_types"]])
        node.gep_scale = d.get("gep_scale", 1)
        return node
    if kind == "fused":
        return FusedComputeNode(
            name,
            [parse_type(t) for t in d["in_types"]],
            parse_type(d["out_type"]),
            [(op, [tuple(r) for r in refs], parse_type(t), scale)
             for op, refs, t, scale in d["exprs"]],
            fused_names=d.get("fused_names", ()))
    if kind == "const":
        return ConstNode(d["value"], parse_type(d["type"]), name=name)
    if kind == "livein":
        return LiveIn(d["index"], parse_type(d["type"]), name=name)
    if kind == "liveout":
        return LiveOut(d["index"], parse_type(d["type"]), name=name)
    if kind == "select":
        return SelectNode(parse_type(d["type"]), name=name)
    if kind == "phi":
        return PhiNode(parse_type(d["type"]), name=name)
    if kind == "loopctl":
        node = LoopControl(name=name, conditional=d["conditional"])
        node.pipeline_stages = d["pipeline_stages"]
        node.max_in_flight = d["max_in_flight"]
        return node
    if kind == "load":
        node = LoadNode(parse_type(d["type"]), name=name)
        node.array = d.get("array")
        node.max_outstanding = d.get("max_outstanding", 4)
        return node
    if kind == "store":
        node = StoreNode(parse_type(d["type"]), name=name)
        node.array = d.get("array")
        node.max_outstanding = d.get("max_outstanding", 4)
        return node
    if kind == "call":
        node = CallNode(d["callee"],
                        [parse_type(t) for t in d["arg_types"]],
                        [parse_type(t) for t in d["ret_types"]],
                        name=name)
        node.serialize = d.get("serialize", False)
        node.max_outstanding = d.get("max_outstanding", 8)
        return node
    if kind == "spawn":
        return SpawnNode(d["callee"],
                         [parse_type(t) for t in d["arg_types"]],
                         name=name)
    if kind == "sync":
        return SyncNode(name=name)
    raise GraphError(f"cannot deserialize node kind {kind!r}")


def _port_ref(port) -> Dict:
    return {"node": port.node.name, "port": port.name}


# ---------------------------------------------------------------------------
# Circuit <-> dict
# ---------------------------------------------------------------------------

def circuit_to_dict(circuit: AcceleratorCircuit) -> Dict:
    """Encode a circuit as a JSON-compatible dict."""
    structures = []
    for s in circuit.structures:
        if isinstance(s, Scratchpad):
            structures.append({
                "kind": "scratchpad", "name": s.name,
                "size_words": s.size_words, "banks": s.banks,
                "ports_per_bank": s.ports_per_bank,
                "latency": s.latency, "arrays": list(s.arrays),
                "shape": list(s.shape) if s.shape else None,
                "write_buffer_entries": s.write_buffer_entries})
        elif isinstance(s, Cache):
            structures.append({
                "kind": "cache", "name": s.name,
                "size_words": s.size_words, "banks": s.banks,
                "line_words": s.line_words,
                "hit_latency": s.hit_latency,
                "ports_per_bank": s.ports_per_bank,
                "ways": s.ways})
        elif isinstance(s, PerfCounterBank):
            structures.append({
                "kind": "perf_counters", "name": s.name,
                "task": s.task,
                "counters": [{"name": c.name, "kind": c.kind,
                              "target": c.target, "width": c.width}
                             for c in s.counters]})

    tasks = []
    for task in circuit.tasks.values():
        df = task.dataflow
        tasks.append({
            "name": task.name,
            "kind": task.kind,
            "num_tiles": task.num_tiles,
            "queue_depth": task.queue_depth,
            "live_in_types": [str(t) for t in task.live_in_types],
            "live_out_types": [str(t) for t in task.live_out_types],
            "nodes": [_node_to_dict(n) for n in df.nodes],
            "connections": [{
                "src": _port_ref(c.src), "dst": _port_ref(c.dst),
                "buffered": c.buffered, "depth": c.depth,
                "latched": c.latched,
                "tuned_bits": c.tuned_bits} for c in df.connections],
            # Optional ports created lazily (pred/order) must exist
            # before connections are rebuilt.
            "lazy_ports": [
                {"node": n.name, "port": p}
                for n in df.nodes
                for p, attr in (("pred", "pred"), ("order", "order_in"))
                if getattr(n, attr, None) is not None],
            "junctions": [{
                "name": j.name, "structure": j.structure.name,
                "issue_width": j.issue_width,
                "clients": [c.name for c in j.clients]}
                for j in task.junctions],
        })

    return {
        "format": FORMAT_VERSION,
        "name": circuit.name,
        "root": circuit.root,
        "clock_period_ns": circuit.clock_period_ns,
        "dram": {"latency": circuit.dram.latency,
                 "requests_per_cycle": circuit.dram.requests_per_cycle},
        "array_layout": {k: list(v)
                         for k, v in circuit.array_layout.items()},
        "array_home": {k: v.name for k, v in circuit.array_home.items()},
        "structures": structures,
        "tasks": tasks,
        "task_edges": [{
            "parent": e.parent, "child": e.child, "kind": e.kind,
            "queue_depth": e.queue_depth, "decoupled": e.decoupled}
            for e in circuit.task_edges],
    }


def circuit_from_dict(data: Dict) -> AcceleratorCircuit:
    """Rebuild a circuit from :func:`circuit_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported circuit format {data.get('format')!r}")
    circuit = AcceleratorCircuit(data["name"])
    circuit.clock_period_ns = data["clock_period_ns"]
    circuit.dram = DRAMModel(
        latency=data["dram"]["latency"],
        requests_per_cycle=data["dram"]["requests_per_cycle"])
    circuit.array_layout = {k: tuple(v)
                            for k, v in data["array_layout"].items()}

    for s in data["structures"]:
        if s["kind"] == "scratchpad":
            circuit.add_structure(Scratchpad(
                s["name"], size_words=s["size_words"],
                banks=s["banks"], ports_per_bank=s["ports_per_bank"],
                latency=s["latency"], arrays=s["arrays"],
                shape=tuple(s["shape"]) if s["shape"] else None,
                write_buffer_entries=s.get("write_buffer_entries", 0)))
        elif s["kind"] == "cache":
            circuit.add_structure(Cache(
                s["name"], size_words=s["size_words"],
                banks=s["banks"], line_words=s["line_words"],
                hit_latency=s["hit_latency"],
                ports_per_bank=s["ports_per_bank"],
                ways=s.get("ways", 1)))
        elif s["kind"] == "perf_counters":
            circuit.add_structure(PerfCounterBank(
                s["name"], task=s.get("task", ""),
                counters=[CounterSpec(c["name"], c["kind"],
                                      c.get("target", ""),
                                      c.get("width", 32))
                          for c in s.get("counters", [])]))
    circuit.array_home = {
        k: circuit.structure(v)
        for k, v in data["array_home"].items()}

    for t in data["tasks"]:
        task = TaskBlock(t["name"], t["kind"])
        task.num_tiles = t["num_tiles"]
        task.queue_depth = t["queue_depth"]
        task.live_in_types = [parse_type(x) for x in t["live_in_types"]]
        task.live_out_types = [parse_type(x)
                               for x in t["live_out_types"]]
        by_name: Dict[str, Node] = {}
        for nd in t["nodes"]:
            node = _node_from_dict(nd)
            task.dataflow.add(node)
            by_name[node.name] = node
        for lazy in t.get("lazy_ports", []):
            node = by_name[lazy["node"]]
            if lazy["port"] == "pred":
                node.enable_predicate()
            else:
                node.enable_order_in()
        for c in t["connections"]:
            src = by_name[c["src"]["node"]].port(c["src"]["port"])
            dst = by_name[c["dst"]["node"]].port(c["dst"]["port"])
            conn = task.dataflow.connect(src, dst,
                                         buffered=c["buffered"],
                                         depth=c["depth"],
                                         latched=c["latched"])
            conn.tuned_bits = c.get("tuned_bits")
        for j in t["junctions"]:
            junction = Junction(j["name"],
                                circuit.structure(j["structure"]),
                                issue_width=j["issue_width"])
            for client in j["clients"]:
                junction.attach(by_name[client])
            task.add_junction(junction)
        task.reindex_junctions()
        circuit.add_task(task)

    for e in data["task_edges"]:
        edge = TaskEdge(e["parent"], e["child"], kind=e["kind"],
                        queue_depth=e["queue_depth"],
                        decoupled=e["decoupled"])
        circuit.add_task_edge(edge)
    circuit.root = data["root"]
    return circuit


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------

def canonical_circuit_dict(circuit: AcceleratorCircuit) -> Dict:
    """Order-invariant content form of a circuit.

    Two circuits with the same tasks, nodes, connections, structures,
    and attributes hash identically regardless of the order they were
    built in (node insertion, connection creation, structure
    registration...).  The circuit's own *display* name is excluded —
    content addressing must not distinguish ``img_2b_4t`` from
    ``img_scale_p7`` when the hardware is the same — but node, task,
    and structure names are content: they name RTL instances.
    """
    data = circuit_to_dict(circuit)
    data.pop("name", None)
    data["structures"] = sorted(
        data["structures"], key=lambda s: (s["kind"], s["name"]))
    for task in data["tasks"]:
        task["nodes"] = sorted(task["nodes"], key=lambda n: n["name"])
        task["connections"] = sorted(
            task["connections"],
            key=lambda c: (c["src"]["node"], c["src"]["port"],
                           c["dst"]["node"], c["dst"]["port"]))
        task["lazy_ports"] = sorted(
            task["lazy_ports"], key=lambda p: (p["node"], p["port"]))
        for junction in task["junctions"]:
            junction["clients"] = sorted(junction["clients"])
        task["junctions"] = sorted(task["junctions"],
                                   key=lambda j: j["name"])
    data["tasks"] = sorted(data["tasks"], key=lambda t: t["name"])
    data["task_edges"] = sorted(
        data["task_edges"],
        key=lambda e: (e["parent"], e["child"], e["kind"]))
    return data


def circuit_fingerprint(circuit: AcceleratorCircuit) -> str:
    """SHA-256 of the canonical content form (hex digest)."""
    import hashlib
    payload = json.dumps(canonical_circuit_dict(circuit),
                         sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_circuit(circuit: AcceleratorCircuit) -> AcceleratorCircuit:
    """Rebuild ``circuit`` in canonical order.

    Within-cycle arbitration ties make cycle-exact timing sensitive to
    node/junction *ordering*, which is a build artifact, not content.
    Anything that maps a content fingerprint to cycle-exact results
    (the DSE cache) must therefore evaluate the canonical form: same
    fingerprint -> same canonical circuit -> identical simulation.
    """
    data = canonical_circuit_dict(circuit)
    data["name"] = circuit.name
    return circuit_from_dict(data)


def save_circuit(circuit: AcceleratorCircuit, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(circuit_to_dict(circuit), fh, indent=1)


def load_circuit(path: str) -> AcceleratorCircuit:
    with open(path) as fh:
        return circuit_from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# Graphviz
# ---------------------------------------------------------------------------

_KIND_COLOR = {
    "livein": "lightblue", "liveout": "lightblue",
    "const": "gray90", "compute": "white", "tensor": "gold",
    "fused": "palegreen", "select": "white", "phi": "orange",
    "loopctl": "orchid", "load": "salmon", "store": "salmon",
    "call": "khaki", "spawn": "khaki", "sync": "khaki",
}


def to_dot(circuit: AcceleratorCircuit) -> str:
    """Render the circuit as Graphviz dot (clusters per task block)."""
    lines = [f'digraph "{circuit.name}" {{',
             "  rankdir=LR;",
             "  node [shape=box, style=filled, fontsize=10];"]
    for ti, task in enumerate(circuit.tasks.values()):
        lines.append(f"  subgraph cluster_{ti} {{")
        lines.append(f'    label="{task.name} ({task.kind}, '
                     f'{task.num_tiles} tile(s))";')
        for node in task.dataflow.nodes:
            color = _KIND_COLOR.get(node.kind, "white")
            nid = f"n{ti}_{node.id}"
            label = node.describe()
            loc = provenance_label(node.provenance)
            if loc:
                label += f"\\n{loc}"
            lines.append(
                f'    {nid} [label="{label}", '
                f'fillcolor={color}];')
        for conn in task.dataflow.connections:
            src = f"n{ti}_{conn.src.node.id}"
            dst = f"n{ti}_{conn.dst.node.id}"
            style = "dashed" if conn.latched else (
                "solid" if conn.buffered else "bold")
            lines.append(f"    {src} -> {dst} [style={style}];")
        lines.append("  }")
    # Task edges across clusters (anchor on node 0 of each task).
    names = list(circuit.tasks)
    for edge in circuit.task_edges:
        pi, ci = names.index(edge.parent), names.index(edge.child)
        p0 = circuit.tasks[edge.parent].dataflow.nodes[0].id
        c0 = circuit.tasks[edge.child].dataflow.nodes[0].id
        lines.append(
            f'  n{pi}_{p0} -> n{ci}_{c0} [style=dotted, color=blue, '
            f'label="{edge.kind}", lhead=cluster_{ci}];')
    lines.append("}")
    return "\n".join(lines)

"""Operation library: per-op latency, combinational delay, and cost class.

This is the reproduction's version of the paper's "uIR library of
microarchitecture components".  Three consumers share it:

* the cycle simulator takes ``latency`` (pipeline depth in cycles),
* the OpFusion pass packs chains while total ``delay_ns`` fits in the
  clock period (so fusion never robs frequency, section 6.1),
* the RTL synthesis model maps ``area_class`` to ALM/Reg/DSP and ASIC
  area/power (Table 2).

Latencies follow common FPGA IP depths: single-cycle integer ALU ops, a
3-stage integer multiplier, 4-stage hardfloat add/mul, long iterative
divide/sqrt/exp, and a reduction-tree Tensor2D unit (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import FloatType, TensorType, Type


@dataclass(frozen=True)
class OpInfo:
    """Hardware characteristics of one operation."""

    latency: int          # pipeline depth, cycles (II = 1 unless noted)
    delay_ns: float       # combinational delay of one stage
    area_class: str       # key into the RTL cost library
    initiation_interval: int = 1


_INT_OPS = {
    "add": OpInfo(1, 0.55, "int_alu"),
    "sub": OpInfo(1, 0.55, "int_alu"),
    "and": OpInfo(1, 0.25, "int_logic"),
    "or": OpInfo(1, 0.25, "int_logic"),
    "xor": OpInfo(1, 0.25, "int_logic"),
    "not": OpInfo(1, 0.20, "int_logic"),
    "neg": OpInfo(1, 0.55, "int_alu"),
    "abs": OpInfo(1, 0.60, "int_alu"),
    "shl": OpInfo(1, 0.40, "int_shift"),
    "lshr": OpInfo(1, 0.40, "int_shift"),
    "ashr": OpInfo(1, 0.40, "int_shift"),
    "mul": OpInfo(3, 0.95, "int_mul"),
    "div": OpInfo(12, 1.10, "int_div", initiation_interval=4),
    "rem": OpInfo(12, 1.10, "int_div", initiation_interval=4),
    "eq": OpInfo(1, 0.45, "int_cmp"),
    "ne": OpInfo(1, 0.45, "int_cmp"),
    "lt": OpInfo(1, 0.50, "int_cmp"),
    "le": OpInfo(1, 0.50, "int_cmp"),
    "gt": OpInfo(1, 0.50, "int_cmp"),
    "ge": OpInfo(1, 0.50, "int_cmp"),
}

_FLOAT_OPS = {
    "fadd": OpInfo(4, 1.30, "fp_add"),
    "fsub": OpInfo(4, 1.30, "fp_add"),
    "fneg": OpInfo(1, 0.20, "int_logic"),
    "fmul": OpInfo(4, 1.40, "fp_mul"),
    "fdiv": OpInfo(14, 1.60, "fp_div", initiation_interval=6),
    "exp": OpInfo(18, 1.60, "fp_elem", initiation_interval=4),
    "sqrt": OpInfo(14, 1.50, "fp_elem", initiation_interval=6),
    "itof": OpInfo(2, 0.90, "fp_cvt"),
    "ftoi": OpInfo(2, 0.90, "fp_cvt"),
    # Float comparisons share the int comparator class cost-wise.
    "feq": OpInfo(1, 0.60, "int_cmp"),
    "flt": OpInfo(1, 0.60, "int_cmp"),
}

_TENSOR_OPS = {
    # Reduction-tree Tensor2D multiplier (Figure 14): all scalar
    # products in parallel, log-depth adder tree; pipelined.
    "tmul": OpInfo(4, 1.50, "tensor_mul"),
    "tadd": OpInfo(2, 1.30, "tensor_add"),
    "tsub": OpInfo(2, 1.30, "tensor_add"),
    "trelu": OpInfo(1, 0.40, "tensor_relu"),
}

_MISC_OPS = {
    "select": OpInfo(1, 0.35, "mux"),
    "phi": OpInfo(1, 0.35, "mux"),
    "const": OpInfo(0, 0.10, "const"),
    "gep": OpInfo(1, 0.55, "int_alu"),
    "livein": OpInfo(0, 0.10, "buffer"),
    "liveout": OpInfo(0, 0.10, "buffer"),
    "loopctl": OpInfo(1, 0.70, "loop_control"),
    "load": OpInfo(1, 0.60, "mem_port"),
    "store": OpInfo(1, 0.60, "mem_port"),
    "call": OpInfo(1, 0.70, "task_iface"),
    "spawn": OpInfo(1, 0.70, "task_iface"),
    "sync": OpInfo(1, 0.50, "task_iface"),
}

_ALL_OPS = {**_INT_OPS, **_FLOAT_OPS, **_TENSOR_OPS, **_MISC_OPS}

#: Ops whose dataflow node may be fused with neighbours (section 6.1):
#: cheap single-stage logic/arithmetic that composes combinationally.
FUSABLE_OPS = {
    "add", "sub", "and", "or", "xor", "not", "neg", "shl", "lshr",
    "ashr", "eq", "ne", "lt", "le", "gt", "ge", "select", "gep", "abs",
}


def op_info(op: str, type_: Type = None) -> OpInfo:
    """Look up hardware characteristics for ``op`` producing ``type_``.

    Integer opcode names double as float ones when the node type is a
    float (the translator keeps LLVM-style distinct names, but a few
    generic sites pass the shared comparison names).
    """
    if type_ is not None and isinstance(type_, FloatType):
        if op in {"eq", "ne"}:
            return _FLOAT_OPS["feq"]
        if op in {"lt", "le", "gt", "ge"}:
            return _FLOAT_OPS["flt"]
    if type_ is not None and isinstance(type_, TensorType) \
            and op in {"add", "mul", "sub"}:
        return _TENSOR_OPS["t" + op]
    info = _ALL_OPS.get(op)
    if info is None:
        raise KeyError(f"unknown operation {op!r}")
    return info


def is_fusable(op: str, type_: Type = None) -> bool:
    """May a node running ``op`` participate in op-fusion?"""
    if type_ is not None and (isinstance(type_, FloatType)
                              or isinstance(type_, TensorType)):
        # Float/tensor units are deep pipelines; fusing them would
        # stretch the critical stage (the pass skips them).
        return op in {"select"}
    return op in FUSABLE_OPS


def known_ops():
    """All opcodes in the library (for tests and the RTL cost DB)."""
    return sorted(_ALL_OPS)

"""Base graph machinery for uIR task dataflows.

A :class:`Dataflow` owns :class:`Node`s; nodes expose typed
:class:`Port`s; :class:`Connection`s join one output port to one input
port.  Output ports may fan out to several connections (the RTL fork
duplicates tokens); each input port accepts at most one connection.

Connections model the paper's latency-insensitive links:

* ``buffered=True`` (default) — a registered ready/valid handshake
  stage; the baseline translation buffers *every* edge, which is the
  slack the OpFusion pass later reclaims;
* ``latched=True`` — a live-in buffer: the consumer reads the value
  repeatedly without consuming it (how loop bodies see loop-invariant
  values, section 3.5 "buffer the live-ins ... feed into the
  dataflow").
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import GraphError
from ..types import Type


class Port:
    """One typed endpoint on a node."""

    __slots__ = ("node", "name", "type", "direction",
                 "incoming", "outgoing")

    def __init__(self, node: "Node", name: str, type_: Type,
                 direction: str):
        if direction not in ("in", "out"):
            raise GraphError(f"bad port direction {direction!r}")
        self.node = node
        self.name = name
        self.type = type_
        self.direction = direction
        self.incoming: Optional[Connection] = None   # inputs only
        self.outgoing: List[Connection] = []          # outputs only

    @property
    def is_input(self) -> bool:
        return self.direction == "in"

    @property
    def is_connected(self) -> bool:
        return self.incoming is not None if self.is_input \
            else bool(self.outgoing)

    def label(self) -> str:
        return f"{self.node.name}.{self.name}"

    def __repr__(self) -> str:
        return f"Port({self.label()}:{self.type}:{self.direction})"


class Connection:
    """A 1-1 dataflow edge between an output and an input port."""

    __slots__ = ("src", "dst", "buffered", "depth", "latched",
                 "tuned_bits")

    def __init__(self, src: Port, dst: Port, buffered: bool = True,
                 depth: int = 2, latched: bool = False):
        self.src = src
        self.dst = dst
        self.buffered = buffered
        self.depth = depth
        self.latched = latched
        #: Narrowed physical width set by the bit-width tuner (None =
        #: use the type's natural width).
        self.tuned_bits: Optional[int] = None

    @property
    def type(self) -> Type:
        return self.src.type

    @property
    def width_bits(self) -> int:
        """Inferred physical width (the paper's port polymorphism)."""
        return self.src.type.bits

    def __repr__(self) -> str:
        kind = "latched" if self.latched else (
            "buffered" if self.buffered else "wire")
        return f"Connection({self.src.label()} -> {self.dst.label()}, {kind})"


class Node:
    """Base class of all dataflow nodes; subclasses add fixed ports."""

    KIND = "node"

    def __init__(self, name: str):
        self.name = name
        self.id: int = -1                      # set by owning Dataflow
        self.dataflow: Optional["Dataflow"] = None
        self.inputs: List[Port] = []
        self.outputs: List[Port] = []
        self._port_map: Dict[str, Port] = {}
        #: Source origins (tuple of provenance.SourceLoc); metadata
        #: only, preserved and merged by passes.
        self.provenance: tuple = ()

    # -- port construction ------------------------------------------------
    def add_in(self, name: str, type_: Type) -> Port:
        return self._add_port(name, type_, "in")

    def add_out(self, name: str, type_: Type) -> Port:
        return self._add_port(name, type_, "out")

    def _add_port(self, name: str, type_: Type, direction: str) -> Port:
        if name in self._port_map:
            raise GraphError(f"duplicate port {name!r} on {self.name}")
        port = Port(self, name, type_, direction)
        (self.inputs if direction == "in" else self.outputs).append(port)
        self._port_map[name] = port
        return port

    def port(self, name: str) -> Port:
        try:
            return self._port_map[name]
        except KeyError:
            raise GraphError(
                f"node {self.name} ({self.KIND}) has no port {name!r}")

    def has_port(self, name: str) -> bool:
        return name in self._port_map

    # -- topology helpers ---------------------------------------------------
    def predecessors(self) -> Iterator["Node"]:
        for p in self.inputs:
            if p.incoming is not None:
                yield p.incoming.src.node

    def successors(self) -> Iterator["Node"]:
        for p in self.outputs:
            for conn in p.outgoing:
                yield conn.dst.node

    @property
    def kind(self) -> str:
        return self.KIND

    def describe(self) -> str:
        """One-line description for dumps and the Chisel emitter."""
        return self.KIND

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class Dataflow:
    """A task block's internal dataflow graph."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: List[Node] = []
        self.connections: List[Connection] = []
        self._next_id = 0

    # -- construction ---------------------------------------------------
    def add(self, node: Node) -> Node:
        if node.dataflow is not None:
            raise GraphError(f"node {node.name} already owned by "
                             f"{node.dataflow.name}")
        node.id = self._next_id
        self._next_id += 1
        node.dataflow = self
        self.nodes.append(node)
        return node

    def connect(self, src: Port, dst: Port, buffered: bool = True,
                depth: int = 2, latched: bool = False) -> Connection:
        if src.direction != "out":
            raise GraphError(f"connection source {src.label()} is not an "
                             f"output port")
        if dst.direction != "in":
            raise GraphError(f"connection target {dst.label()} is not an "
                             f"input port")
        if dst.incoming is not None:
            raise GraphError(f"input port {dst.label()} already driven "
                             f"by {dst.incoming.src.label()}")
        conn = Connection(src, dst, buffered=buffered, depth=depth,
                          latched=latched)
        src.outgoing.append(conn)
        dst.incoming = conn
        self.connections.append(conn)
        return conn

    def disconnect(self, conn: Connection) -> None:
        conn.src.outgoing.remove(conn)
        conn.dst.incoming = None
        self.connections.remove(conn)

    def remove(self, node: Node) -> None:
        """Remove ``node`` and every connection touching it."""
        for port in list(node.inputs):
            if port.incoming is not None:
                self.disconnect(port.incoming)
        for port in list(node.outputs):
            for conn in list(port.outgoing):
                self.disconnect(conn)
        self.nodes.remove(node)
        node.dataflow = None

    def rewire_output(self, old: Port, new: Port) -> None:
        """Move every consumer of ``old`` onto ``new``."""
        for conn in list(old.outgoing):
            dst, buffered = conn.dst, conn.buffered
            depth, latched = conn.depth, conn.latched
            self.disconnect(conn)
            self.connect(new, dst, buffered=buffered, depth=depth,
                         latched=latched)

    # -- queries --------------------------------------------------------
    def nodes_of_kind(self, kind: str) -> List[Node]:
        return [n for n in self.nodes if n.kind == kind]

    def node_named(self, name: str) -> Node:
        for n in self.nodes:
            if n.name == name:
                return n
        raise GraphError(f"dataflow {self.name} has no node {name!r}")

    def topological_order(self) -> List[Node]:
        """Topological order ignoring loop back-edges (phi 'back' ports)."""
        indeg: Dict[Node, int] = {n: 0 for n in self.nodes}
        for conn in self.connections:
            if self._is_back_edge(conn):
                continue
            indeg[conn.dst.node] += 1
        ready = [n for n, d in indeg.items() if d == 0]
        order: List[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for port in node.outputs:
                for conn in port.outgoing:
                    if self._is_back_edge(conn):
                        continue
                    indeg[conn.dst.node] -= 1
                    if indeg[conn.dst.node] == 0:
                        ready.append(conn.dst.node)
        if len(order) != len(self.nodes):
            raise GraphError(
                f"dataflow {self.name} has a combinational cycle "
                f"(only {len(order)}/{len(self.nodes)} nodes ordered)")
        return order

    @staticmethod
    def _is_back_edge(conn: Connection) -> bool:
        if conn.dst.name == "back" and conn.dst.node.kind == "phi":
            return True
        # A conditional loop's continue token is the control back edge.
        return (conn.dst.name == "cont"
                and conn.dst.node.kind == "loopctl")

    def stats(self) -> Dict[str, int]:
        return {"nodes": len(self.nodes),
                "connections": len(self.connections)}

    def __repr__(self) -> str:
        return (f"Dataflow({self.name}, {len(self.nodes)} nodes, "
                f"{len(self.connections)} edges)")

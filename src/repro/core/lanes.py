"""Lane-indexed values: the batched simulation's data layer.

One batched run steps ``N`` independent workload instances ("lanes")
through a *single* runtime: one scheduler, one set of channels, one
set of FU timers, one invocation queue.  The latency-insensitive
execution model guarantees independent invocations of the same
circuit cannot interact, so all *control* state — channel occupancy,
loop trip counts, memory request addresses, predicates, task
enqueues — is provably identical across lanes as long as every value
a control decision reads is lane-uniform.  Only the *payload* values
carry a lane dimension, as a :class:`LaneValues` wrapper holding one
value per lane (a structure-of-arrays layout: the scalar state the
sequential kernels keep per instance becomes a lane-indexed vector,
while the collapsed occupancy/timer dimension is shared).

The uniformity requirement is *enforced*, not assumed:
``LaneValues.__bool__`` / ``__int__`` / ``__index__`` return the
uniform scalar or raise :class:`repro.errors.LaneDivergence`, so the
existing control sites (``int(addr)``, ``bool(pred)``,
``if not cont:``) work unmodified and become the uniformity checks.
A divergence aborts the batched attempt — which ran against *copies*
of the lane memories — and the driver re-runs each lane sequentially
against the untouched originals (bit-identical by construction, just
without the speedup).

Equivalence argument (DESIGN.md §9): every control decision in a
batched run is made on a value checked to be identical to the value
each lane's independent run would see; payload computation applies
the identical scalar evaluator per lane (or a bit-exact vectorized
twin); therefore the cycle-by-cycle schedule and every lane's results
and memory image match N independent runs exactly.

numpy is optional (the ``[batch]`` extra): when importable, lane
vectors for statically-safe operations (int add/sub/mul/and/or/xor at
width <= 32, where int64 intermediates are exact, and IEEE-identical
float64 fadd/fsub/fmul) are evaluated as numpy arrays; everything
else — and every environment without numpy — uses the list-of-lanes
loop, which is the definitionally-correct backend.  Set
``REPRO_BATCH_NO_NUMPY=1`` to force the list backend.
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Optional, Sequence

from ..errors import LaneDivergence
from ..types import FloatType, IntType

__all__ = [
    "BatchContext", "LaneImage", "LaneValues", "ctrl", "have_numpy",
    "lane_fingerprint", "lane_lift_list", "lane_lift_pos",
    "lane_pack_words", "lane_row", "lane_select", "lane_unpack_words",
    "numpy_note", "vector_key", "vector_fn",
]

#: Below this lane count the numpy round-trip costs more than the
#: list loop it replaces.
NUMPY_MIN_LANES = 8


class BatchContext:
    """Per-run batch descriptor threaded through the runtime.

    Binders read ``instance.runtime.batch`` once, at bind time, to
    select lane-aware evaluators — the scalar (batch=None) closures
    stay byte-identical to the unbatched kernel.
    """

    __slots__ = ("lanes",)

    def __init__(self, lanes: int):
        self.lanes = int(lanes)

    def __repr__(self) -> str:
        return f"BatchContext(lanes={self.lanes})"


def _same(a, b) -> bool:
    """Strict per-lane value identity.

    Stricter than ``==`` on purpose: the memory digest the equivalence
    gate compares is ``repr``-based, so ``0.0`` vs ``-0.0`` (equal,
    different repr) and ``True`` vs ``1`` (equal, different type) must
    count as divergent — collapsing them would change what a lane
    writes back relative to its independent run.
    """
    if a is b:
        return True
    if a.__class__ is not b.__class__:
        return False
    if a != b:
        return False
    if a.__class__ is float and a == 0.0:
        return repr(a) == repr(b)       # 0.0 vs -0.0
    if a.__class__ is tuple:
        return repr(a) == repr(b)       # multi-word payloads
    return True


class LaneValues:
    """One payload value per lane.

    Flows through channels, forks, phi/select nodes and memory
    requests exactly like a scalar.  Any attempt to use it where a
    *scalar control value* is required (truth test, index, int
    coercion) returns the lane-uniform scalar or raises
    :class:`LaneDivergence` — which is precisely the soundness check
    the batched kernel relies on.
    """

    __slots__ = ("lanes",)

    def __init__(self, lanes: List):
        self.lanes = lanes

    def uniform(self):
        lanes = self.lanes
        v0 = lanes[0]
        for v in lanes:
            if not _same(v0, v):
                raise LaneDivergence(
                    f"lane-divergent value reached a control decision "
                    f"(lane 0: {v0!r}, divergent: {v!r})")
        return v0

    def __bool__(self) -> bool:
        return bool(self.uniform())

    def __int__(self) -> int:
        return int(self.uniform())

    def __index__(self) -> int:
        return int(self.uniform())

    def __float__(self) -> float:
        return float(self.uniform())

    def __repr__(self) -> str:
        return f"LaneValues({self.lanes!r})"


def ctrl(value):
    """Force a value to a lane-uniform scalar at a control junction."""
    if type(value) is LaneValues:
        return value.uniform()
    return value


def lane_select(cond, a, b):
    """``a if cond else b`` with lane-wise condition support.

    A divergent select condition is *data*, not control — each lane
    picks its own arm, exactly as its independent run would.
    """
    if type(cond) is LaneValues:
        conds = cond.lanes
        n = len(conds)
        la = a.lanes if type(a) is LaneValues else [a] * n
        lb = b.lanes if type(b) is LaneValues else [b] * n
        return LaneValues([x if c else y
                           for c, x, y in zip(conds, la, lb)])
    return a if cond else b


def lane_row(values: Sequence, lane: int) -> List:
    """Project one lane out of a mixed scalar/LaneValues sequence."""
    return [v.lanes[lane] if type(v) is LaneValues else v
            for v in values]


def lane_pack_words(words: Sequence):
    """Assemble a (possibly lane-indexed) multi-word load payload.

    Mirrors the scalar kernels' ``tuple(rec.words)``: uniform words
    stay a plain tuple; any lane-indexed word lifts the whole payload
    to a LaneValues of per-lane tuples.
    """
    n = 0
    for w in words:
        if type(w) is LaneValues:
            n = len(w.lanes)
            break
    else:
        return tuple(words)
    return LaneValues([
        tuple(w.lanes[i] if type(w) is LaneValues else w for w in words)
        for i in range(n)])


def lane_unpack_words(data, words: int):
    """Split a multi-word store payload into per-word values.

    Inverse of :func:`lane_pack_words`: a LaneValues of per-lane
    tuples becomes one LaneValues per word position.
    """
    if type(data) is LaneValues:
        lanes = data.lanes
        return [LaneValues([lane[w] for lane in lanes])
                for w in range(words)]
    return data


class LaneImage:
    """N per-lane memory images behind a single ``image[addr]`` API.

    The memory system's timing machinery (banks, caches, write
    buffers, junction arbitration) keys on *addresses*, which are
    control values and therefore lane-uniform; only the stored words
    differ per lane.  So the whole of :mod:`repro.sim.memory` runs
    unchanged against this object: reads gather across lanes
    (collapsing to a plain scalar when all lanes agree, so uniform
    data never pays the lane dimension), writes scatter a LaneValues
    or broadcast a scalar.
    """

    __slots__ = ("lanes",)

    def __init__(self, lane_words: List[List]):
        if not lane_words:
            raise ValueError("LaneImage needs at least one lane")
        self.lanes = lane_words

    def __len__(self) -> int:
        return len(self.lanes[0])

    def __getitem__(self, addr):
        lanes = self.lanes
        v0 = lanes[0][addr]
        for row in lanes:
            if not _same(v0, row[addr]):
                return LaneValues([row[addr] for row in lanes])
        return v0

    def __setitem__(self, addr, value) -> None:
        if type(value) is LaneValues:
            for row, v in zip(self.lanes, value.lanes):
                row[addr] = v
        else:
            for row in self.lanes:
                row[addr] = value


def lane_fingerprint(args: Sequence, words: Sequence) -> str:
    """Content identity of one lane's *input* (root args + initial
    memory image); stamped into per-lane error documents so a failed
    lane is reproducible outside the batch."""
    h = hashlib.sha256()
    h.update(repr([repr(a) for a in args]).encode())
    h.update(b"|")
    for w in words:
        h.update(repr(w).encode())
        h.update(b",")
    return h.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Lane-lifted evaluators (compiled kernel) + optional numpy backend.
# ---------------------------------------------------------------------------

_np = None
_np_checked = False


def _numpy():
    """Lazy, env-gated numpy import (never at module import time: the
    tier-1 suite and the scalar kernels must not depend on it)."""
    global _np, _np_checked
    if os.environ.get("REPRO_BATCH_NO_NUMPY") == "1":
        return None
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
            _np = numpy
        except ImportError:
            _np = None
    return _np


def have_numpy() -> bool:
    return _numpy() is not None


def numpy_note() -> Optional[str]:
    """One-line capability note for the CLI when numpy is absent."""
    if _numpy() is not None:
        return None
    return ("note: numpy not available - batched lanes use the "
            "pure-Python list backend (install the [batch] extra "
            "for the vectorized fast path)")


#: Ops whose int64 evaluation is exact for wrapped width<=32 operands
#: (|a|,|b| < 2^31 so even a*b < 2^62) and bit-equal to the scalar
#: wrap; division/shifts are excluded (C-style semantics differ).
_NP_INT_OPS = ("add", "sub", "mul", "and", "or", "xor")
#: float64 maps 1:1 onto Python floats, so these are IEEE-identical.
_NP_FLOAT_OPS = ("fadd", "fsub", "fmul")


def vector_key(op: str, result_type):
    """Compile-time tag of a statically numpy-safe (op, type) combo;
    None marks everything that must stay on the scalar-per-lane loop.
    Computed at circuit-compile time so cached plans carry it."""
    if isinstance(result_type, IntType) and result_type.width <= 32 \
            and op in _NP_INT_OPS:
        return ("int", op, result_type.width, result_type.signed)
    if isinstance(result_type, FloatType) and op in _NP_FLOAT_OPS:
        return ("float", op)
    return None


def vector_fn(vkey):
    """Vectorized lane evaluator for a :func:`vector_key` tag.

    Returns ``vf(lanes_a, lanes_b) -> list | None`` (None = operands
    not eligible at runtime, caller falls back to the list loop), or
    None when numpy is unavailable.
    """
    np = _numpy()
    if np is None or vkey is None:
        return None
    if vkey[0] == "int":
        _, op, width, signed = vkey
        mask = (1 << width) - 1
        sign_bit = 1 << (width - 1)
        span = 1 << width
        npop = {"add": np.add, "sub": np.subtract,
                "mul": np.multiply, "and": np.bitwise_and,
                "or": np.bitwise_or, "xor": np.bitwise_xor}[op]

        def vf(la, lb):
            for x in la:
                if x.__class__ is not int:
                    return None
            for x in lb:
                if x.__class__ is not int:
                    return None
            r = npop(np.array(la, dtype=np.int64),
                     np.array(lb, dtype=np.int64)) & mask
            if signed:
                r = np.where(r >= sign_bit, r - span, r)
            return r.tolist()

        return vf
    _, op = vkey
    npop = {"fadd": np.add, "fsub": np.subtract,
            "fmul": np.multiply}[op]

    def vf(la, lb):
        for x in la:
            if x.__class__ is not float:
                return None
        for x in lb:
            if x.__class__ is not float:
                return None
        return npop(np.array(la, dtype=np.float64),
                    np.array(lb, dtype=np.float64)).tolist()

    return vf


def lane_lift_pos(arity: int, f, vkey=None):
    """Lane-lifted twin of a positional evaluator from
    :func:`repro.core.semantics.specialize_compute_pos`.

    Scalar operands take the original fast path untouched; any
    LaneValues operand broadcasts the scalars and maps ``f`` per lane
    (or dispatches to the numpy backend when the op is statically safe
    and the lane count clears :data:`NUMPY_MIN_LANES`).
    """
    if arity == 1:
        def lifted(a):
            if type(a) is LaneValues:
                return LaneValues([f(x) for x in a.lanes])
            return f(a)
        return lifted
    if arity == 2:
        vf = vector_fn(vkey)

        def lifted(a, b):
            av = type(a) is LaneValues
            bv = type(b) is LaneValues
            if not av and not bv:
                return f(a, b)
            if av and bv:
                la, lb = a.lanes, b.lanes
            elif av:
                la = a.lanes
                lb = [b] * len(la)
            else:
                lb = b.lanes
                la = [a] * len(lb)
            if vf is not None and len(la) >= NUMPY_MIN_LANES:
                out = vf(la, lb)
                if out is not None:
                    return LaneValues(out)
            return LaneValues([f(x, y) for x, y in zip(la, lb)])
        return lifted

    def lifted(a, b, c):
        n = 0
        for v in (a, b, c):
            if type(v) is LaneValues:
                n = len(v.lanes)
                break
        else:
            return f(a, b, c)
        la = a.lanes if type(a) is LaneValues else [a] * n
        lb = b.lanes if type(b) is LaneValues else [b] * n
        lc = c.lanes if type(c) is LaneValues else [c] * n
        return LaneValues([f(x, y, z)
                           for x, y, z in zip(la, lb, lc)])
    return lifted


def lane_lift_list(f):
    """Lane-lifted twin of a list-form evaluator (``f(vals) -> r``);
    also lifts the fused-region evaluators, which share the shape."""
    def lifted(vals):
        n = 0
        for v in vals:
            if type(v) is LaneValues:
                n = len(v.lanes)
                break
        else:
            return f(vals)
        return LaneValues([f(lane_row(vals, i)) for i in range(n)])
    return lifted

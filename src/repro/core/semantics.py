"""Shared functional semantics of compute operations.

The reference interpreter, the uIR cycle simulator, and fused-node
evaluation all execute the *same* scalar/tensor operation definitions
from this module, so "transformations preserve behavior" is checkable
by construction.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..errors import SimulationError
from ..types import BoolType, IntType, TensorType, Type
from .lanes import LaneValues, lane_row


def eval_compute(op: str, vals: Sequence, result_type: Type):
    """Evaluate pure operation ``op`` over concrete values.

    Lane-indexed operands (batched simulation) are intercepted before
    the scalar arms: the coercions below (``int``, ``bool``-via-
    ``if``, raw ``==``) are *control* conversions on a
    :class:`~repro.core.lanes.LaneValues` and would either demand
    lane uniformity payload data does not have, or (for the bare
    comparisons) silently fall back to identity — so divergent
    payloads must be mapped per lane instead.
    """
    for v in vals:
        if type(v) is LaneValues:
            return _eval_compute_lanes(op, vals, result_type)
    if op == "add":
        return _wrap(int(vals[0]) + int(vals[1]), result_type)
    if op == "sub":
        return _wrap(int(vals[0]) - int(vals[1]), result_type)
    if op == "mul":
        return _wrap(int(vals[0]) * int(vals[1]), result_type)
    if op == "div":
        return _wrap(_int_div(int(vals[0]), int(vals[1])), result_type)
    if op == "rem":
        a, b = int(vals[0]), int(vals[1])
        return _wrap(a - _int_div(a, b) * b, result_type)
    if op == "and":
        return _wrap(int(vals[0]) & int(vals[1]), result_type)
    if op == "or":
        return _wrap(int(vals[0]) | int(vals[1]), result_type)
    if op == "xor":
        return _wrap(int(vals[0]) ^ int(vals[1]), result_type)
    if op == "shl":
        return _wrap(int(vals[0]) << (int(vals[1]) & 31), result_type)
    if op == "lshr":
        width = result_type.bits or 32
        return _wrap((int(vals[0]) & ((1 << width) - 1))
                     >> (int(vals[1]) & 31), result_type)
    if op == "ashr":
        return _wrap(int(vals[0]) >> (int(vals[1]) & 31), result_type)
    if op == "fadd":
        return float(vals[0]) + float(vals[1])
    if op == "fsub":
        return float(vals[0]) - float(vals[1])
    if op == "fmul":
        return float(vals[0]) * float(vals[1])
    if op == "fdiv":
        if float(vals[1]) == 0.0:
            raise SimulationError("float division by zero")
        return float(vals[0]) / float(vals[1])
    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        a, b = vals
        return {"eq": a == b, "ne": a != b, "lt": a < b,
                "le": a <= b, "gt": a > b, "ge": a >= b}[op]
    if op == "select":
        return vals[1] if vals[0] else vals[2]
    if op == "neg":
        return _wrap(-int(vals[0]), result_type)
    if op == "fneg":
        return -float(vals[0])
    if op == "not":
        return _wrap(~int(vals[0]), result_type)
    if op == "abs":
        return abs(vals[0])
    if op == "exp":
        return math.exp(float(vals[0]))
    if op == "sqrt":
        return math.sqrt(float(vals[0]))
    if op == "itof":
        return float(vals[0])
    if op == "ftoi":
        return int(vals[0])
    if op == "gep":
        # vals: (base_addr, index); scaling handled by the caller, who
        # passes the element size in words as vals[2].
        scale = int(vals[2]) if len(vals) > 2 else 1
        return int(vals[0]) + int(vals[1]) * scale
    if op == "tadd":
        return tuple(x + y for x, y in zip(vals[0], vals[1]))
    if op == "tsub":
        return tuple(x - y for x, y in zip(vals[0], vals[1]))
    if op == "tmul":
        return tensor_matmul(vals[0], vals[1], result_type)
    if op == "trelu":
        return tuple(v if v > 0 else 0.0 for v in vals[0])
    raise SimulationError(f"no semantics for op {op!r}")


def _eval_compute_lanes(op: str, vals: Sequence, result_type: Type):
    """Lane-wise :func:`eval_compute`: apply the identical scalar
    semantics to each lane's operand row (broadcasting scalar
    operands), which is by definition what each lane's independent
    run computes."""
    n = 0
    for v in vals:
        if type(v) is LaneValues:
            n = len(v.lanes)
            break
    return LaneValues([eval_compute(op, lane_row(vals, i), result_type)
                       for i in range(n)])


def specialize_compute_pos(op: str, result_type: Type,
                           gep_scale: int = 1):
    """Pre-resolve ``eval_compute`` dispatch for one (op, type) pair.

    Returns ``(arity, f)`` where ``f`` takes its operands
    *positionally* and is bit-identical to
    ``eval_compute(op, vals, result_type)`` (with ``gep`` scaling
    folded in, matching the caller-appended ``vals[2]`` convention).
    The op string comparison chain, type isinstance tests, and integer
    mask computation all happen once here instead of once per fire —
    the compiled simulation kernel's per-node evaluator (positional so
    its hot call sites need no operand-list allocation).
    """
    if isinstance(result_type, IntType):
        wrap = result_type.wrapper()
    elif isinstance(result_type, BoolType):
        wrap = lambda v: v & 1          # noqa: E731 (mirrors _wrap)
    else:
        wrap = int
    if op == "add":
        return 2, lambda a, b: wrap(int(a) + int(b))
    if op == "sub":
        return 2, lambda a, b: wrap(int(a) - int(b))
    if op == "mul":
        return 2, lambda a, b: wrap(int(a) * int(b))
    if op == "div":
        return 2, lambda a, b: wrap(_int_div(int(a), int(b)))

    if op == "rem":
        def _rem(a, b):
            a, b = int(a), int(b)
            return wrap(a - _int_div(a, b) * b)
        return 2, _rem
    if op == "and":
        return 2, lambda a, b: wrap(int(a) & int(b))
    if op == "or":
        return 2, lambda a, b: wrap(int(a) | int(b))
    if op == "xor":
        return 2, lambda a, b: wrap(int(a) ^ int(b))
    if op == "shl":
        return 2, lambda a, b: wrap(int(a) << (int(b) & 31))
    if op == "lshr":
        lmask = (1 << (result_type.bits or 32)) - 1
        return 2, lambda a, b: wrap((int(a) & lmask) >> (int(b) & 31))
    if op == "ashr":
        return 2, lambda a, b: wrap(int(a) >> (int(b) & 31))
    if op == "fadd":
        return 2, lambda a, b: float(a) + float(b)
    if op == "fsub":
        return 2, lambda a, b: float(a) - float(b)
    if op == "fmul":
        return 2, lambda a, b: float(a) * float(b)

    if op == "fdiv":
        def _fdiv(a, b):
            if float(b) == 0.0:
                raise SimulationError("float division by zero")
            return float(a) / float(b)
        return 2, _fdiv
    if op == "eq":
        return 2, lambda a, b: a == b
    if op == "ne":
        return 2, lambda a, b: a != b
    if op == "lt":
        return 2, lambda a, b: a < b
    if op == "le":
        return 2, lambda a, b: a <= b
    if op == "gt":
        return 2, lambda a, b: a > b
    if op == "ge":
        return 2, lambda a, b: a >= b
    if op == "select":
        return 3, lambda c, a, b: a if c else b
    if op == "neg":
        return 1, lambda a: wrap(-int(a))
    if op == "fneg":
        return 1, lambda a: -float(a)
    if op == "not":
        return 1, lambda a: wrap(~int(a))
    if op == "abs":
        return 1, abs
    if op == "exp":
        return 1, lambda a: math.exp(float(a))
    if op == "sqrt":
        return 1, lambda a: math.sqrt(float(a))
    if op == "itof":
        return 1, float
    if op == "ftoi":
        return 1, int
    if op == "gep":
        scale = int(gep_scale)
        return 2, lambda a, b: int(a) + int(b) * scale
    if op == "tadd":
        return 2, lambda a, b: tuple(x + y for x, y in zip(a, b))
    if op == "tsub":
        return 2, lambda a, b: tuple(x - y for x, y in zip(a, b))
    if op == "tmul":
        return 2, lambda a, b: tensor_matmul(a, b, result_type)
    if op == "trelu":
        return 1, lambda a: tuple(v if v > 0 else 0.0 for v in a)
    raise SimulationError(f"no semantics for op {op!r}")


def specialize_compute(op: str, result_type: Type, gep_scale: int = 1):
    """List-operand form of :func:`specialize_compute_pos` (used by
    fused-expression plans, whose operands are gathered by ref)."""
    arity, f = specialize_compute_pos(op, result_type, gep_scale)
    if arity == 1:
        return lambda vals: f(vals[0])
    if arity == 2:
        return lambda vals: f(vals[0], vals[1])
    return lambda vals: f(vals[0], vals[1], vals[2])


def tensor_matmul(a: Tuple, b: Tuple, t: TensorType) -> Tuple:
    """rows x cols tile matrix product (square tiles)."""
    n, m = t.rows, t.cols
    out = []
    for i in range(n):
        for j in range(m):
            acc = 0.0
            for k in range(m):
                acc += a[i * m + k] * b[k * m + j]
            out.append(acc)
    return tuple(out)


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise SimulationError("integer division by zero")
    q = a // b
    if (a < 0) != (b < 0) and q * b != a:
        q += 1  # round toward zero, C-style
    return q


def _wrap(value: int, t: Type):
    if isinstance(t, IntType):
        return t.wrap(int(value))
    if isinstance(t, BoolType):
        return int(value) & 1
    return int(value)


def poison_value(t: Type):
    """The value a predicated-off node forwards (paper section 3.5)."""
    if isinstance(t, TensorType):
        return tuple(0.0 for _ in range(t.elements))
    if t.is_float:
        return 0.0
    return 0

"""Shared functional semantics of compute operations.

The reference interpreter, the uIR cycle simulator, and fused-node
evaluation all execute the *same* scalar/tensor operation definitions
from this module, so "transformations preserve behavior" is checkable
by construction.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..errors import SimulationError
from ..types import BoolType, IntType, TensorType, Type


def eval_compute(op: str, vals: Sequence, result_type: Type):
    """Evaluate pure operation ``op`` over concrete values."""
    if op == "add":
        return _wrap(int(vals[0]) + int(vals[1]), result_type)
    if op == "sub":
        return _wrap(int(vals[0]) - int(vals[1]), result_type)
    if op == "mul":
        return _wrap(int(vals[0]) * int(vals[1]), result_type)
    if op == "div":
        return _wrap(_int_div(int(vals[0]), int(vals[1])), result_type)
    if op == "rem":
        a, b = int(vals[0]), int(vals[1])
        return _wrap(a - _int_div(a, b) * b, result_type)
    if op == "and":
        return _wrap(int(vals[0]) & int(vals[1]), result_type)
    if op == "or":
        return _wrap(int(vals[0]) | int(vals[1]), result_type)
    if op == "xor":
        return _wrap(int(vals[0]) ^ int(vals[1]), result_type)
    if op == "shl":
        return _wrap(int(vals[0]) << (int(vals[1]) & 31), result_type)
    if op == "lshr":
        width = result_type.bits or 32
        return _wrap((int(vals[0]) & ((1 << width) - 1))
                     >> (int(vals[1]) & 31), result_type)
    if op == "ashr":
        return _wrap(int(vals[0]) >> (int(vals[1]) & 31), result_type)
    if op == "fadd":
        return float(vals[0]) + float(vals[1])
    if op == "fsub":
        return float(vals[0]) - float(vals[1])
    if op == "fmul":
        return float(vals[0]) * float(vals[1])
    if op == "fdiv":
        if float(vals[1]) == 0.0:
            raise SimulationError("float division by zero")
        return float(vals[0]) / float(vals[1])
    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        a, b = vals
        return {"eq": a == b, "ne": a != b, "lt": a < b,
                "le": a <= b, "gt": a > b, "ge": a >= b}[op]
    if op == "select":
        return vals[1] if vals[0] else vals[2]
    if op == "neg":
        return _wrap(-int(vals[0]), result_type)
    if op == "fneg":
        return -float(vals[0])
    if op == "not":
        return _wrap(~int(vals[0]), result_type)
    if op == "abs":
        return abs(vals[0])
    if op == "exp":
        return math.exp(float(vals[0]))
    if op == "sqrt":
        return math.sqrt(float(vals[0]))
    if op == "itof":
        return float(vals[0])
    if op == "ftoi":
        return int(vals[0])
    if op == "gep":
        # vals: (base_addr, index); scaling handled by the caller, who
        # passes the element size in words as vals[2].
        scale = int(vals[2]) if len(vals) > 2 else 1
        return int(vals[0]) + int(vals[1]) * scale
    if op == "tadd":
        return tuple(x + y for x, y in zip(vals[0], vals[1]))
    if op == "tsub":
        return tuple(x - y for x, y in zip(vals[0], vals[1]))
    if op == "tmul":
        return tensor_matmul(vals[0], vals[1], result_type)
    if op == "trelu":
        return tuple(v if v > 0 else 0.0 for v in vals[0])
    raise SimulationError(f"no semantics for op {op!r}")


def tensor_matmul(a: Tuple, b: Tuple, t: TensorType) -> Tuple:
    """rows x cols tile matrix product (square tiles)."""
    n, m = t.rows, t.cols
    out = []
    for i in range(n):
        for j in range(m):
            acc = 0.0
            for k in range(m):
                acc += a[i * m + k] * b[k * m + j]
            out.append(acc)
    return tuple(out)


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise SimulationError("integer division by zero")
    q = a // b
    if (a < 0) != (b < 0) and q * b != a:
        q += 1  # round toward zero, C-style
    return q


def _wrap(value: int, t: Type):
    if isinstance(t, IntType):
        return t.wrap(int(value))
    if isinstance(t, BoolType):
        return int(value) & 1
    return int(value)


def poison_value(t: Type):
    """The value a predicated-off node forwards (paper section 3.5)."""
    if isinstance(t, TensorType):
        return tuple(0.0 for _ in range(t.elements))
    if t.is_float:
        return 0.0
    return 0

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
translate   MiniC file -> uIR; print stats, optionally dump JSON/dot/Chisel
simulate    compile + optimize + cycle-simulate + verify vs interpreter
synth       report the analytic FPGA/ASIC synthesis estimate
workloads   list the built-in paper workloads
bench       run one built-in workload through a pass stack (--check
            diffs fresh throughput against the committed baseline)
report      cross-layer bottleneck report (sim + opt + synth)
explore     parallel design-space exploration with caching; sweeps
            journal to ``.repro/sweeps`` and resume with ``--resume``
fuzz        LI-conformance fuzzing under seeded fault plans
runs        browse the telemetry run ledger (list | show | diff)
sweeps      browse sweep journals (list | show)
serve       run the evaluation daemon (dedups identical in-flight
            requests, coalesces compatible ones into batched runs,
            streams NDJSON heartbeats + results)
client      talk to a daemon (evaluate | explore | report | health |
            shutdown); `client evaluate` shares its flags with
            `simulate`, so the same invocation runs locally or served

Telemetry: ``--telemetry`` (or ``REPRO_TELEMETRY=1``) traces every
stage, collects metrics, and appends one record per invocation to the
run ledger under ``--telemetry-dir`` (default ``.repro``);
``--telemetry-trace FILE`` additionally writes a unified Perfetto
trace (pipeline spans + cycle-level sim events on one timeline).  The
flags work both globally and after the subcommand.

Pass stacks use the spec mini-language: comma-separated registry names
or aliases, with optional knob arguments — e.g. ``--passes
localize,banking=4,fusion,tiling=2`` (see ``repro.opt.specs``).

Failures exit with a per-error-family code (see
``repro.errors.EXIT_CODES``): parse errors 2, IR/translation 3,
deadlock 4, workload mismatch 5, simulation limits 6, LI-conformance
violations 7, pass errors 8, kernel compilation 10 (with
``--no-kernel-fallback``), quarantined poison points 11, interrupted
sweeps 130 (checkpointed; the message carries the ``--resume`` hint).
``--json-errors`` (global flag, before the subcommand) prints a
machine-readable error document instead of the one-line message.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from . import telemetry
from .errors import EXIT_CODES, ReproError, error_document, \
    exit_code_for
from .frontend import compile_minic, translate_module
from .frontend.interp import Interpreter, Memory
from .opt import PassManager
from .rtl import emit_chisel, emit_verilog, synthesize
from .core.serialize import save_circuit, to_dot
from .sim import FaultPlan, SimParams, simulate, simulate_batch
from .types import FloatType
from .util.rng import seed_memory
from .opt import parse_passes as _parse_passes
from .verify import DEFAULT_FUZZ_PASSES, passes_from_spec


def _parse_args_values(module, raw: Sequence[str]) -> List:
    main = module.main
    if len(raw) != len(main.args):
        raise ReproError(
            f"@main takes {len(main.args)} argument(s) "
            f"({', '.join(f'{a.name}: {a.type}' for a in main.args)}), "
            f"got {len(raw)}")
    values: List = []
    for text, arg in zip(raw, main.args):
        if isinstance(arg.type, FloatType):
            values.append(float(text))
        else:
            values.append(int(text))
    return values


def _seed_memory(memory: Memory, seed: Optional[int]) -> None:
    if seed is None:
        return
    seed_memory(memory, seed)


def _fault_plan_from(args) -> Optional[FaultPlan]:
    """--fault-plan FILE wins; else --faults/--fault-seed generate."""
    path = getattr(args, "fault_plan", None)
    if path:
        with open(path) as fh:
            return FaultPlan.from_json(json.load(fh))
    if getattr(args, "faults", False) or \
            getattr(args, "fault_seed", None) is not None:
        return FaultPlan.generate(args.fault_seed or 0,
                                  intensity=args.fault_intensity)
    return None


def _load_circuit_pipeline(args):
    with open(args.file) as fh:
        source = fh.read()
    module = compile_minic(source, filename=args.file)
    circuit = translate_module(module, name=args.file)
    log = PassManager(_parse_passes(args.passes)).run(circuit)
    return module, circuit, log


def _resolve_observe(args) -> str:
    """--obs-level wins; --trace-out implies "trace"."""
    level = getattr(args, "obs_level", None)
    if getattr(args, "trace_out", None):
        if level == "off":
            raise ReproError(
                "--trace-out needs tracing; drop --obs-level off")
        return "trace"
    return level or "counters"


def cmd_translate(args) -> int:
    module, circuit, log = _load_circuit_pipeline(args)
    print(circuit)
    for task in circuit.tasks.values():
        print(f"  {task.name:<28} kind={task.kind:<5} "
              f"nodes={len(task.dataflow.nodes):<4} "
              f"tiles={task.num_tiles}")
    for result in log:
        print(f"  pass {result.pass_name}: changed={result.changed} "
              f"dN={result.delta_nodes} dE={result.delta_edges}")
    if args.json:
        save_circuit(circuit, args.json)
        print(f"wrote {args.json}")
    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(to_dot(circuit))
        print(f"wrote {args.dot}")
    if args.chisel:
        with open(args.chisel, "w") as fh:
            fh.write(emit_chisel(circuit))
        print(f"wrote {args.chisel}")
    if args.verilog:
        with open(args.verilog, "w") as fh:
            fh.write(emit_verilog(circuit))
        print(f"wrote {args.verilog}")
    return 0


def simulate_request_from(args, source: str):
    """Build the typed :class:`~repro.api.EvaluationRequest` for a
    ``repro simulate`` (or ``repro client evaluate``) invocation.

    This is the API-redesign seam: CLI flags become the same wire
    document the serve daemon accepts, so a local simulate and a
    served one serialize — and therefore dedup and batch — identically.
    """
    from .api import request_for
    observe = _resolve_observe(args)
    plan = _fault_plan_from(args)
    batch_n = args.batch if getattr(args, "batch", None) \
        and args.batch > 1 else None
    params = SimParams(max_cycles=args.max_cycles, kernel=args.kernel,
                       observe=observe,
                       trace_capacity=args.trace_capacity,
                       faults=plan,
                       compile_fallback=not getattr(
                           args, "no_kernel_fallback", False),
                       wallclock_timeout=args.timeout,
                       batch=batch_n)
    raw_args = getattr(args, "args", None)
    return request_for(
        source, args.passes or None, params,
        variant=getattr(args, "variant", "base"),
        check=not getattr(args, "no_check", False),
        name=getattr(args, "file", None),
        args=list(raw_args) if raw_args is not None else None,
        seed=getattr(args, "seed", None)), plan


def cmd_simulate(args) -> int:
    import time

    from .api import Pipeline, run_request

    if args.trace_out and args.kernel == "dense":
        raise ReproError(
            "--trace-out requires the event or compiled kernel "
            "(rerun without --kernel dense)")
    with open(args.file) as fh:
        source = fh.read()
    if args.batch and args.batch > 1 and args.seed is not None:
        # Seeded batches are not wire-expressible (every lane owns its
        # memory image), so this combination keeps the direct path.
        return _simulate_batched_seeded(args, source)
    request, plan = simulate_request_from(args, source)
    if plan is not None:
        print(f"faults: {plan.describe()}")
    pipeline = None
    if args.validate_each:
        # Host-local option: run the front end ourselves with per-pass
        # validation, then hand the pipeline to the request executor.
        pipeline = Pipeline(source, name=args.file)
        pipeline.optimize(args.passes or None, validate_each=True)
    t_sim = time.perf_counter()
    pipe, result = run_request(request, pipeline=pipeline)
    t_sim = time.perf_counter() - t_sim
    if request.is_batch:
        return _print_batch(args, pipe, result, t_sim)
    sim = pipe.sim
    if sim.compile_error is not None:
        err = sim.compile_error
        print(f"note: compiled kernel unavailable "
              f"({err.get('error')}: {err.get('message')}); "
              f"ran the event kernel instead", file=sys.stderr)
    print(f"cycles: {sim.cycles}")
    if sim.results:
        print(f"returned: {sim.results}")
    # run_request verifies against the interpreter (a divergence
    # raises WorkloadError, exit 5), so reaching here means OK.
    print("behavior vs interpreter: OK")
    for key, value in sorted(sim.stats.summary().items()):
        print(f"  {key}: {value}")
    if args.profile:
        print(f"\nthroughput: {sim.cycles / t_sim:,.0f} simulated "
              f"cycles/s ({args.kernel} kernel, {t_sim:.3f}s wall)")
        if pipe.pass_log:
            total_ms = sum(r.wall_ms for r in pipe.pass_log)
            print(f"\npass pipeline ({total_ms:.1f}ms):")
            print("pass                      wall_ms   dN      dE")
            for r in pipe.pass_log:
                print(f"{r.pass_name:<25} {r.wall_ms:>7.1f} "
                      f"{r.delta_nodes:>+5d}   {r.delta_edges:>+5d}")
            print(f"{'total':<25} {total_ms:>7.1f}")
        stalls = sim.stats.stall_cycles
        if stalls:
            total = sum(stalls.values())
            print("\nstall attribution (instance-cycles):")
            for cause, cyc in stalls.most_common():
                print(f"  {cause:<16} {cyc:>8}  "
                      f"({100.0 * cyc / total:.1f}%)")
            print("top stalled nodes:")
            for label, cause, cyc in sim.stats.top_stalled_nodes(8):
                print(f"  {label:<32} {cause:<16} {cyc:>8}")
        sources = sim.stats.top_stalled_sources(8)
        if sources:
            print("top stalled source lines:")
            for loc, cause, cyc in sources:
                print(f"  {loc:<36} {cause:<16} {cyc:>8}")
    if args.stats_json:
        sim.stats.dump_json(args.stats_json)
        print(f"wrote {args.stats_json}")
    if args.trace_out:
        if sim.observer is None:
            raise ReproError(
                "--trace-out requires the event or compiled kernel "
                "(rerun without --kernel dense)")
        sim.observer.write_chrome_trace(args.trace_out)
        print(f"wrote {args.trace_out} "
              f"(load in chrome://tracing or Perfetto)")
    return 0


def _print_batch(args, pipe, batch, t_sim: float) -> int:
    """Report a request-path batched simulate (lanes already verified
    by ``run_request``; a diverging lane raised)."""
    from .core.lanes import numpy_note

    note = numpy_note()
    if note:
        print(f"note: {note}", file=sys.stderr)
    ok = True
    for i in range(batch.lanes):
        if batch.errors[i] is not None:
            err = batch.errors[i]
            print(f"lane {i}: FAILED[{err.get('error')}] "
                  f"fingerprint={err.get('input_fingerprint')}",
                  file=sys.stderr)
            ok = False
    cycles = [r.cycles if r is not None else None
              for r in batch.results]
    print(f"batch: {batch.lanes} lanes, mode={batch.mode}")
    print(f"cycles: {cycles[0] if len(set(cycles)) == 1 else cycles}")
    first = next((r for r in batch.results if r is not None), None)
    if first is not None and first.results:
        print(f"returned: {first.results}")
    print(f"behavior vs interpreter: "
          f"{'OK (all lanes)' if ok else 'MISMATCH'}")
    print(f"throughput: {batch.lanes / t_sim:,.1f} sims/s "
          f"({args.kernel} kernel, {t_sim:.3f}s wall)")
    if args.stats_json:
        batch.stats.dump_json(args.stats_json)
        print(f"wrote {args.stats_json}")
    return 0 if ok else 1


def _simulate_batched_seeded(args, source: str) -> int:
    """``repro simulate --batch N --seed S``: the legacy direct path
    (seeded lane memories cannot cross the request wire)."""
    module = compile_minic(source, filename=args.file)
    circuit = translate_module(module, name=args.file)
    PassManager(_parse_passes(args.passes),
                validate_each=args.validate_each).run(circuit)
    values = _parse_args_values(module, args.args)
    golden = Memory(module)
    _seed_memory(golden, args.seed)
    Interpreter(module, golden).run(*values)
    plan = _fault_plan_from(args)
    params = SimParams(max_cycles=args.max_cycles, kernel=args.kernel,
                       observe=_resolve_observe(args),
                       trace_capacity=args.trace_capacity,
                       faults=plan,
                       compile_fallback=not args.no_kernel_fallback,
                       wallclock_timeout=args.timeout)
    if plan is not None:
        print(f"faults: {plan.describe()}")
    return _simulate_batched(args, module, circuit, values, golden,
                             params)


def _simulate_batched(args, module, circuit, values, golden,
                      params) -> int:
    """``repro simulate --batch N``: N identical lanes through one
    batched run, each verified against the interpreter's golden
    image."""
    import time
    from dataclasses import replace as _replace

    from .core.lanes import numpy_note

    n = args.batch
    lanes = []
    for _ in range(n):
        mem = Memory(module)
        _seed_memory(mem, args.seed)
        lanes.append(mem)
    t_sim = time.perf_counter()
    batch = simulate_batch(circuit, lanes, [list(values)] * n,
                           _replace(params, batch=n))
    t_sim = time.perf_counter() - t_sim
    note = numpy_note()
    if note:
        print(f"note: {note}", file=sys.stderr)
    ok = True
    for i in range(n):
        if batch.errors[i] is not None:
            err = batch.errors[i]
            print(f"lane {i}: FAILED[{err.get('error')}] "
                  f"fingerprint={err.get('input_fingerprint')}",
                  file=sys.stderr)
            ok = False
        elif lanes[i].words != golden.words:
            print(f"lane {i}: memory MISMATCH vs interpreter",
                  file=sys.stderr)
            ok = False
    cycles = [r.cycles if r is not None else None
              for r in batch.results]
    print(f"batch: {n} lanes, mode={batch.mode}")
    print(f"cycles: {cycles[0] if len(set(cycles)) == 1 else cycles}")
    first = next((r for r in batch.results if r is not None), None)
    if first is not None and first.results:
        print(f"returned: {first.results}")
    print(f"behavior vs interpreter: "
          f"{'OK (all lanes)' if ok else 'MISMATCH'}")
    print(f"throughput: {n / t_sim:,.1f} sims/s "
          f"({params.kernel} kernel, {t_sim:.3f}s wall)")
    if args.stats_json:
        batch.stats.dump_json(args.stats_json)
        print(f"wrote {args.stats_json}")
    return 0 if ok else 1


def cmd_synth(args) -> int:
    _module, circuit, _log = _load_circuit_pipeline(args)
    report = synthesize(circuit)
    for key, value in report.row().items():
        print(f"  {key}: {value}")
    return 0


def cmd_workloads(_args) -> int:
    from .workloads import WORKLOADS
    for name, w in WORKLOADS.items():
        variants = "+" + ",".join(w.variants) if w.variants else ""
        print(f"  {name:<10} {w.category:<11} args={w.args} "
              f"{variants}")
    return 0


def cmd_bench(args) -> int:
    if args.check:
        from .bench import check_throughput, render_check
        doc = check_throughput(
            args.baseline,
            workloads=[args.workload] if args.workload else None,
            repeat=args.repeat, threshold=args.threshold)
        print(render_check(doc))
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
            print(f"wrote {args.json}")
        return 0 if doc["ok"] else 1
    if not args.workload:
        raise ReproError("bench needs a workload name (or --check)")
    params = SimParams(observe=_resolve_observe(args),
                       kernel=args.kernel,
                       trace_capacity=args.trace_capacity)
    if args.batch and args.batch > 1:
        import time

        from .api import Pipeline
        from .core.lanes import numpy_note

        note = numpy_note()
        if note:
            print(f"note: {note}", file=sys.stderr)
        pipe = Pipeline(args.workload, variant=args.variant)
        pipe.optimize(args.passes or None)
        t0 = time.perf_counter()
        batch = pipe.evaluate_many(
            params=SimParams(observe=params.observe,
                             kernel=params.kernel,
                             trace_capacity=params.trace_capacity,
                             batch=args.batch))
        wall = time.perf_counter() - t0
        cyc = next(r.cycles for r in batch.results if r is not None)
        print(f"{args.workload}/{args.passes or 'baseline'}: "
              f"{cyc} cycles x {batch.lanes} lanes "
              f"(mode={batch.mode}) = {batch.lanes / wall:,.1f} sims/s")
        print("behavior verified against the workload golden check "
              "(every lane)")
        return 0 if batch.ok else 1
    from .api import evaluate
    ev = evaluate(args.workload, args.passes or None, params,
                  variant=args.variant)
    print(f"{ev.workload}/{args.passes or 'baseline'}: "
          f"{ev.cycles} cycles "
          f"@ {ev.synth.fpga_mhz:.0f} MHz = {ev.time_us:.2f} us")
    print("behavior verified against the reference interpreter")
    return 0


def cmd_report(args) -> int:
    from .api import Pipeline
    from .bench.harness import RunResult
    from .report import build_report, dump_report, render_markdown
    passes = _parse_passes(args.passes)
    config = args.passes or "baseline"
    batch = None
    pipe = Pipeline(args.workload, variant=args.variant,
                    name=f"{args.workload}_{config}")
    pipe.optimize(list(passes))
    if args.batch and args.batch > 1:
        batch = pipe.evaluate_many(
            params=SimParams(batch=args.batch, observe="counters",
                             kernel=args.kernel))
        pipe.synthesize(name=args.workload)
        first = next((r for r in batch.results if r is not None), None)
        if first is None:
            raise ReproError(
                f"{args.workload}: every batch lane failed "
                f"({(batch.errors[0] or {}).get('message', '?')})")
        result = RunResult(
            workload=args.workload, config=config,
            cycles=first.cycles, fpga_mhz=pipe.synth.fpga_mhz,
            stats=batch.stats, synth=pipe.synth,
            pass_log=list(pipe.pass_log), variant=args.variant,
            circuit=pipe.circuit)
    else:
        pipe.simulate(kernel=args.kernel)
        pipe.synthesize(name=args.workload)
        result = RunResult(
            workload=args.workload, config=config,
            cycles=pipe.sim.cycles, fpga_mhz=pipe.synth.fpga_mhz,
            stats=pipe.sim.stats, synth=pipe.synth,
            pass_log=list(pipe.pass_log), variant=args.variant,
            circuit=pipe.circuit)
    trace = pipe.sim.trace if pipe.sim is not None else None
    report = build_report(result, top_n=args.top, batch=batch,
                          trace=trace)
    if args.json or args.md:
        dump_report(report, json_path=args.json, md_path=args.md)
        for path in (args.json, args.md):
            if path:
                print(f"wrote {path}")
    else:
        print(render_markdown(report))
    if args.stats_json:
        result.stats.dump_json(args.stats_json)
        print(f"wrote {args.stats_json}")
    return 0


#: Default ``repro explore`` pipeline template: the paper's img_scale
#: banks x tiles sweep (tiling only once there is more than one tile).
DEFAULT_EXPLORE_TEMPLATE = (
    "localize,banking={banks},fusion,tuning,"
    "pipelining?tiles>1,tiling={tiles}?tiles>1")


def cmd_explore(args) -> int:
    from .dse import (DEFAULT_LEASE_TTL, DEFAULT_SWEEPS_DIR,
                      GridSpace, RandomSpace, RetryPolicy, explore,
                      parse_axis, resume)
    from .report import render_explore_markdown

    retry = RetryPolicy(max_attempts=max(1, args.retries),
                        base_delay=args.retry_delay)
    sweeps_dir = args.sweeps_dir or DEFAULT_SWEEPS_DIR
    lease_ttl = args.lease_ttl if args.lease_ttl is not None \
        else DEFAULT_LEASE_TTL
    cache = None if args.no_cache else args.cache_dir
    progress = None if args.quiet else \
        (lambda point: print(point.describe()))
    if args.resume:
        report = resume(
            args.resume, sweeps_dir=sweeps_dir,
            workers=args.workers, cache=cache, progress=progress,
            retry=retry, point_timeout=args.point_timeout,
            lease_ttl=lease_ttl)
        objectives = list(report.objectives)
    else:
        if not args.workload:
            raise ReproError(
                "explore needs a WORKLOAD (or --resume SWEEP)")
        axes = dict(parse_axis(text) for text in args.grid)
        if not axes:
            raise ReproError(
                "explore needs at least one --grid AXIS=V1,V2,...")
        space = RandomSpace(axes, args.random, seed=args.seed) \
            if args.random else GridSpace(axes)
        objectives = [o.strip() for o in args.objectives.split(",")
                      if o.strip()]
        params = SimParams(kernel=args.kernel,
                           max_cycles=args.max_cycles,
                           wallclock_timeout=args.timeout)
        journal = None if args.no_journal else sweeps_dir
        report = explore(
            args.workload, space, pipeline=args.pipeline,
            variant=args.variant, sim=params, workers=args.workers,
            cache=cache, objectives=objectives,
            check=not args.no_check, progress=progress,
            journal=journal, sweep_id=args.sweep_id, retry=retry,
            point_timeout=args.point_timeout, lease_ttl=lease_ttl)
    print(report.summary())
    doc = report.to_json()
    print(f"\nPareto frontier ({' / '.join(objectives)}, minimized):")
    for index in report.pareto:
        print(f"  {report.point(index).describe()}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    if args.md:
        with open(args.md, "w") as fh:
            fh.write(render_explore_markdown(doc))
        print(f"wrote {args.md}")
    failures = [p for p in report.points if not p.ok]
    for point in failures:
        err = point.error or {}
        print(f"  point {point.index} {point.params}: "
              f"{err.get('error')}: {err.get('message')}",
              file=sys.stderr)
    if not failures:
        return 0
    if len(failures) == len(report.points):
        return failures[0].error.get("exit_code", 1) or 1
    if any(p.quarantined for p in failures):
        # Distinct exit so CI can tell "a point is poison" apart from
        # ordinary partial failure.
        return EXIT_CODES["PoisonPointError"]
    return 1


def cmd_fuzz(args) -> int:
    from .verify import ConformanceFuzzer, replay_bundle
    if args.replay:
        case = replay_bundle(args.replay, kernel=args.kernel,
                             max_cycles=args.max_cycles)
        print(case.describe())
        if not case.ok:
            print(f"  {case.message}")
        return 0 if case.ok else (case.exit_code or 7)

    workloads = None
    if args.workloads and args.workloads != "all":
        workloads = [w.strip() for w in args.workloads.split(",")
                     if w.strip()]
        from .workloads import get_workload
        for name in workloads:  # fail fast on a typo
            get_workload(name)
    spec = DEFAULT_FUZZ_PASSES if args.passes is None else args.passes
    passes_from_spec(spec)  # fail fast on a typo, before simulating
    fuzzer = ConformanceFuzzer(
        pass_spec=spec, differential=args.differential,
        artifacts_dir=args.artifacts_dir, kernel=args.kernel,
        compare_kernel=args.compare_kernel,
        max_cycles=args.max_cycles, wallclock_timeout=args.timeout,
        minimize=not args.no_minimize, batch=args.batch)
    progress = None if args.quiet else \
        (lambda case: print(case.describe()))
    report = fuzzer.fuzz(workloads=workloads, n_plans=args.plans,
                         seed=args.seed, intensity=args.intensity,
                         progress=progress)
    print(report.summary())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_json(), fh, indent=1, default=str)
        print(f"wrote {args.json}")
    failures = report.failures()
    if not failures:
        return 0
    for case in failures:
        bundle = f" bundle={case.bundle}" if case.bundle else ""
        print(f"  {case.case_id}: {case.error}{bundle}",
              file=sys.stderr)
    return failures[0].exit_code or 7


def _print_run(record: dict) -> None:
    """Human view of one ledger record (``repro runs show``)."""
    print(f"run {record['run_id']}")
    print(f"  ts:      {record['ts']}")
    print(f"  command: {record['command']} "
          f"({' '.join(record['argv'])})")
    print(f"  status:  {record['status']} "
          f"(exit {record['exit_code']}), "
          f"{record['wall_s']:.3f}s wall")
    for key, value in sorted(record.get("annotations", {}).items()):
        print(f"  {key}: {value}")
    if record.get("fingerprints"):
        for fp in record["fingerprints"]:
            print(f"  circuit: {fp}")
    if record.get("stages"):
        print("  stages:")
        for name, ms in sorted(record["stages"].items(),
                               key=lambda kv: -kv[1]):
            print(f"    {name:<28} {ms:>10.3f} ms")
    if record.get("passes"):
        print("  passes:")
        for row in record["passes"]:
            extra = " ".join(f"{k}={v}" for k, v in sorted(row.items())
                             if k not in ("pass", "wall_ms"))
            print(f"    {row['pass']:<28} {row['wall_ms']:>10.3f} ms"
                  f"  {extra}")
    metrics = (record.get("metrics") or {}).get("metrics", [])
    if metrics:
        print("  metrics:")
        for metric in metrics:
            if metric.get("type") == "histogram":
                print(f"    {metric['name']:<36} "
                      f"count={metric['count']} sum={metric['sum']}")
                continue
            for sample in metric.get("samples", []):
                labels = sample.get("labels") or {}
                body = "{" + ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())) \
                    + "}" if labels else ""
                print(f"    {metric['name'] + body:<36} "
                      f"{sample['value']}")
    if record.get("error"):
        err = record["error"]
        print(f"  error: {err.get('error')}: {err.get('message')}")


def cmd_runs(args) -> int:
    from .telemetry import RunLedger, diff_records

    ledger = RunLedger(args.dir or getattr(args, "telemetry_dir",
                                           None))
    try:
        if args.action == "list":
            records, skipped = ledger.records()
            if args.json:
                print(json.dumps(records, indent=1, sort_keys=True))
                return 0
            if not records:
                print(f"(run ledger {ledger.path} is empty)")
                return 0
            for i, r in enumerate(records):
                marker = "" if r["status"] == "ok" \
                    else f"  [{r['status']} exit {r['exit_code']}]"
                print(f"  {i - len(records):>4}  {r['run_id']}  "
                      f"{r['ts']}  {r['command']:<10} "
                      f"{r['wall_s']:>8.3f}s{marker}")
            if skipped:
                print(f"  ({skipped} corrupt line(s) skipped)",
                      file=sys.stderr)
            return 0
        if args.action == "show":
            record = ledger.find(args.refs[0] if args.refs else "last")
            if args.json:
                print(json.dumps(record, indent=1, sort_keys=True))
            else:
                _print_run(record)
            return 0
        if args.action == "diff":
            if len(args.refs) != 2:
                raise ReproError(
                    "runs diff needs exactly two run references "
                    "(run_id prefix, index, or 'last')")
            diff = diff_records(ledger.find(args.refs[0]),
                                ledger.find(args.refs[1]))
            if args.json:
                print(json.dumps(diff, indent=1, sort_keys=True))
                return 0
            print(f"a: {diff['a']['run_id']} ({diff['a']['command']}, "
                  f"{diff['a']['wall_s']}s)")
            print(f"b: {diff['b']['run_id']} ({diff['b']['command']}, "
                  f"{diff['b']['wall_s']}s)")
            for title, rows in (("stages (ms)", diff["stages_ms"]),
                                ("metrics", diff["metrics"])):
                if not rows:
                    continue
                print(f"  {title}:")
                for row in rows:
                    delta = f"  d={row['delta']:+}" \
                        if "delta" in row else ""
                    ratio = f"  x{row['ratio']}" \
                        if "ratio" in row else ""
                    print(f"    {row['key']:<40} "
                          f"{row['a'] if row['a'] is not None else '-':>12} "
                          f"-> "
                          f"{row['b'] if row['b'] is not None else '-':>12}"
                          f"{delta}{ratio}")
            return 0
    except LookupError as exc:
        raise ReproError(str(exc)) from exc
    raise ReproError(f"unknown runs action {args.action!r}")


def cmd_sweeps(args) -> int:
    from .dse import DEFAULT_SWEEPS_DIR, list_sweeps, resolve_sweep

    sweeps_dir = args.dir or DEFAULT_SWEEPS_DIR
    if args.action == "list":
        rows = list_sweeps(sweeps_dir)
        if args.json:
            print(json.dumps(rows, indent=1, sort_keys=True))
            return 0
        if not rows:
            print(f"(no sweep journals under {sweeps_dir})")
            return 0
        for i, r in enumerate(rows):
            print(f"  {i - len(rows):>4}  {r['sweep_id']}  "
                  f"{r['ts']}  {r['workload']:<12} "
                  f"{r['status']:<12} {r['done']}/{r['planned']} "
                  f"done, {r['failed']} failed, "
                  f"{r['quarantined']} quarantined")
        return 0
    if args.action == "show":
        journal = resolve_sweep(args.refs[0] if args.refs else "last",
                                sweeps_dir)
        state = journal.state()
        if args.json:
            doc = {
                "summary": state.summary(),
                "journal": journal.path,
                "points": [{
                    "key": ps.key, "index": ps.index,
                    "params": ps.params, "pass_spec": ps.pass_spec,
                    "status": ps.status, "attempts": ps.attempts,
                    "error": ps.error,
                } for ps in state.ordered()],
            }
            print(json.dumps(doc, indent=1, sort_keys=True))
            return 0
        s = state.summary()
        plan = state.plan or {}
        print(f"sweep {state.sweep_id}")
        print(f"  ts:       {s['ts']}")
        print(f"  workload: {s['workload']} "
              f"(variant {s['variant']})")
        if plan.get("template"):
            print(f"  template: {plan['template']}")
        print(f"  status:   {s['status']}")
        print(f"  points:   {s['planned']} planned, {s['done']} done, "
              f"{s['failed']} failed, {s['quarantined']} quarantined, "
              f"{s['todo']} todo")
        if s["interrupts"]:
            print(f"  interrupts: {s['interrupts']}")
        if state.skipped_lines:
            print(f"  ({state.skipped_lines} corrupt journal "
                  f"line(s) skipped)", file=sys.stderr)
        for ps in state.ordered():
            label = " ".join(f"{k}={v}" for k, v in ps.params.items())
            line = f"  [{ps.index}] {label}: {ps.status}"
            if ps.attempts:
                line += f" ({ps.attempts} failed attempt(s))"
            if ps.error:
                line += (f" -- {ps.error.get('error')}: "
                         f"{ps.error.get('message')}")
            print(line)
        if s["status"] != "complete":
            print(f"\nresume with: repro explore --resume "
                  f"{state.sweep_id}")
        return 0
    raise ReproError(f"unknown sweeps action {args.action!r}")


DEFAULT_SERVE_ADDRESS = "127.0.0.1:8651"


def cmd_serve(args) -> int:
    import asyncio

    from .dse.engine import RetryPolicy
    from .serve import PROTOCOL, ServeServer

    retry = RetryPolicy(max_attempts=max(1, args.retries),
                        base_delay=args.retry_delay)
    # With telemetry on, the scheduler appends one ledger record per
    # served request (the CLI's own per-invocation record still covers
    # the daemon process itself).
    ledger_root = None
    if telemetry.enabled():
        ledger_root = getattr(args, "telemetry_dir", None) or ".repro"
    server = ServeServer(
        host=args.host, port=args.port, socket_path=args.socket,
        workers=args.workers, executor=args.executor,
        max_batch=args.max_batch, heartbeat_s=args.heartbeat,
        retry=retry, job_timeout=args.job_timeout,
        ledger_root=ledger_root)

    async def _main():
        await server.start()
        print(f"serving {PROTOCOL} on {server.address} "
              f"({server.scheduler.workers} worker(s), "
              f"executor={server.scheduler.executor_kind}, "
              f"max-batch={args.max_batch})", flush=True)
        await server.serve_until_stopped()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("serve: interrupted", file=sys.stderr)
        return 130
    return 0


def _make_client(args):
    from .serve import ServeClient
    on_heartbeat = None
    if not args.quiet:
        def on_heartbeat(event):
            state = event.get("state", "?")
            extra = f" {event.get('done')}/{event.get('total')}" \
                if event.get("total") is not None else ""
            print(f"  .. {state}{extra} "
                  f"(elapsed {event.get('elapsed_s', 0.0):g}s, "
                  f"queue {event.get('queue_depth', 0)})",
                  file=sys.stderr)
    return ServeClient(args.address, timeout=args.client_timeout,
                       connect_timeout=args.connect_timeout,
                       on_heartbeat=on_heartbeat)


def cmd_client_evaluate(args) -> int:
    import os

    client = _make_client(args)
    target = args.target
    if os.path.exists(target):
        with open(target) as fh:
            source = fh.read()
        args.file = target  # names the request after the source file
    else:
        source = target  # a workload name
        if not args.args:
            args.args = None  # workload defaults (golden check)
    request, plan = simulate_request_from(args, source)
    if plan is not None:
        print(f"faults: {plan.describe()}")
    response = client.evaluate(request)
    if args.json:
        print(json.dumps(response.to_json(), indent=1,
                         sort_keys=True))
    if response.status != "ok":
        err = response.error or {}
        print(f"error: {err.get('error')}: {err.get('message')} "
              f"(family {err.get('family')})", file=sys.stderr)
        return int(err.get("exit_code") or 1)
    meta = response.meta or {}
    served = f"served in {meta.get('wall_s', 0.0):g}s"
    if meta.get("lru"):
        served += f", circuit cache {meta['lru']}"
    if response.lanes is not None:
        ok = [doc for doc in response.lanes if "error" not in doc]
        cycles = sorted({doc.get("cycles") for doc in ok})
        print(f"batch: {len(response.lanes)} lanes, "
              f"{len(response.lanes) - len(ok)} failed ({served})")
        if cycles:
            print(f"cycles: "
                  f"{cycles[0] if len(cycles) == 1 else cycles}")
        return 0 if len(ok) == len(response.lanes) else 1
    ev = response.evaluation or {}
    print(f"{ev.get('name')}: {ev.get('cycles')} cycles"
          + (f" = {ev.get('time_us'):.2f} us"
             if ev.get("time_us") is not None else "")
          + f" ({served})")
    if ev.get("verified"):
        print("behavior verified (server-side golden check)")
    return 0


def cmd_client_explore(args) -> int:
    from .dse import parse_axis
    from .dse.engine import PointResult

    client = _make_client(args)
    axes = dict(parse_axis(text) for text in args.grid)
    if not axes:
        raise ReproError(
            "client explore needs at least one --grid AXIS=V1,V2,...")
    sim = {}
    if args.kernel != "event":
        sim["kernel"] = args.kernel
    if args.max_cycles != 5_000_000:
        sim["max_cycles"] = args.max_cycles
    spec = {"workload": args.workload, "grid": axes,
            "pipeline": args.pipeline, "variant": args.variant,
            "check": not args.no_check,
            "objectives": [o.strip() for o in
                           args.objectives.split(",") if o.strip()]}
    if sim:
        spec["sim"] = sim
    report = client.explore(spec)
    points = [PointResult.from_json(doc) for doc in report["points"]]
    for point in points:
        print(point.describe())
    print(f"\nPareto frontier "
          f"({' / '.join(report['objectives'])}, minimized):")
    for index in report["pareto"]:
        print(f"  {points[index].describe()}")
    sched = report.get("scheduler", {})
    counters = sched.get("counters", {})
    print(f"served in {report.get('wall_s', 0.0):g}s "
          f"(dedup {counters.get('dedup_hits', 0)}, "
          f"batches {counters.get('batches', 0)}, "
          f"coalesced lanes {counters.get('coalesced_lanes', 0)})")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    failures = [p for p in points if not p.ok]
    for point in failures:
        err = point.error or {}
        print(f"  point {point.index} {point.params}: "
              f"{err.get('error')}: {err.get('message')}",
              file=sys.stderr)
    if not failures:
        return 0
    if len(failures) == len(points):
        return (failures[0].error or {}).get("exit_code", 1) or 1
    return 1


def cmd_client_report(args) -> int:
    client = _make_client(args)
    doc = client.report()
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0
    sched = doc.get("scheduler", {})
    print(f"daemon pid {doc.get('pid')} ({doc.get('protocol')}), "
          f"up {sched.get('uptime_s', 0.0):g}s")
    print(f"  workers: {sched.get('workers')} "
          f"({sched.get('executor')}), max-batch "
          f"{sched.get('max_batch')}")
    print(f"  queue depth: {sched.get('queue_depth')}, inflight: "
          f"{sched.get('inflight')}")
    for key, value in sorted(sched.get("counters", {}).items()):
        print(f"  {key}: {value}")
    return 0


def cmd_client_shutdown(args) -> int:
    client = _make_client(args)
    doc = client.shutdown()
    print(doc.get("status", "ok"))
    return 0


def cmd_client_health(args) -> int:
    client = _make_client(args)
    doc = client.health()
    print(f"{doc.get('status')} (pid {doc.get('pid')}, "
          f"up {doc.get('uptime_s', 0.0):g}s)")
    return 0 if doc.get("status") == "ok" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--json-errors", action="store_true",
                        help="print failures as a JSON error document "
                             "(global flag; give it before the "
                             "subcommand)")
    parser.add_argument("--telemetry", action="store_true",
                        help="trace stages, collect metrics, and "
                             "append this run to the run ledger")
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="run-ledger directory (default: .repro)")
    parser.add_argument("--telemetry-trace", default=None,
                        metavar="FILE",
                        help="write a unified Perfetto trace of the "
                             "run (implies --telemetry)")
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups, declared once as parent parsers so sibling
    # subcommands (simulate / bench / report / explore / client ...)
    # cannot drift apart: the same flag always spells and parses the
    # same way everywhere it appears.
    passes_flags = argparse.ArgumentParser(add_help=False)
    passes_flags.add_argument(
        "--passes", default="",
        help="comma-separated uopt pass spec, e.g. "
             "localize,banking=4,fusion (see repro.opt.specs)")
    variant_flags = argparse.ArgumentParser(add_help=False)
    variant_flags.add_argument("--variant", default="base",
                               help="workload source variant")
    kernel_flags = argparse.ArgumentParser(add_help=False)
    kernel_flags.add_argument("--kernel", default="event",
                              choices=("event", "dense", "compiled",
                                       "trace"),
                              help="simulation kernel "
                                   "(default: event)")
    batch_flags = argparse.ArgumentParser(add_help=False)
    batch_flags.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="simulate N independent instances in one batched run")
    limit_flags = argparse.ArgumentParser(add_help=False)
    limit_flags.add_argument("--max-cycles", type=int,
                             default=5_000_000)
    limit_flags.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="wall-clock watchdog for the "
                                  "simulation")
    fault_flags = argparse.ArgumentParser(add_help=False)
    fault_flags.add_argument("--faults", action="store_true",
                             help="inject a generated fault plan "
                                  "(LI check: cycles change, "
                                  "behavior must not)")
    fault_flags.add_argument("--fault-seed", type=int, default=None,
                             metavar="N",
                             help="fault plan seed (implies "
                                  "--faults; default 0)")
    fault_flags.add_argument("--fault-plan", default=None,
                             metavar="FILE",
                             help="load a fault plan JSON (e.g. from "
                                  "a repro bundle) instead of "
                                  "generating one")
    fault_flags.add_argument("--fault-intensity", type=float,
                             default=1.0, metavar="X",
                             help="scale generated fault rates and "
                                  "magnitudes")
    client_flags = argparse.ArgumentParser(add_help=False)
    client_flags.add_argument(
        "--address", default=DEFAULT_SERVE_ADDRESS, metavar="ADDR",
        help="daemon address: host:port, :port, or unix:/path "
             f"(default {DEFAULT_SERVE_ADDRESS})")
    client_flags.add_argument("--client-timeout", type=float,
                              default=300.0, metavar="SECONDS",
                              help="max silence (no event, not even "
                                   "a heartbeat) before giving up")
    client_flags.add_argument("--connect-timeout", type=float,
                              default=5.0, metavar="SECONDS")
    client_flags.add_argument("--quiet", action="store_true",
                              help="suppress heartbeat progress "
                                   "lines")

    def add_common(p):
        p.add_argument("file", help="MiniC source file")

    def add_telemetry(p):
        # Mirrors of the global flags so ``repro report --telemetry``
        # works too; SUPPRESS keeps an omitted sub-level flag from
        # clobbering the globally parsed value.
        p.add_argument("--telemetry", action="store_true",
                       default=argparse.SUPPRESS,
                       help=argparse.SUPPRESS)
        p.add_argument("--telemetry-dir", metavar="DIR",
                       default=argparse.SUPPRESS,
                       help=argparse.SUPPRESS)
        p.add_argument("--telemetry-trace", metavar="FILE",
                       default=argparse.SUPPRESS,
                       help=argparse.SUPPRESS)

    p = sub.add_parser("translate", parents=[passes_flags],
                       help="MiniC -> uIR (+dumps)")
    add_common(p)
    p.add_argument("--json", help="write circuit JSON here")
    p.add_argument("--dot", help="write Graphviz dot here")
    p.add_argument("--chisel", help="write Chisel text here")
    p.add_argument("--verilog", help="write Verilog skeleton here")
    p.set_defaults(fn=cmd_translate)

    def add_observe(p):
        p.add_argument("--obs-level", default=None,
                       choices=("off", "counters", "trace"),
                       help="observability level (default: counters; "
                            "--trace-out implies trace)")
        p.add_argument("--trace-capacity", type=int, default=65536,
                       metavar="N",
                       help="trace ring-buffer capacity in events")

    p = sub.add_parser("simulate",
                       parents=[passes_flags, kernel_flags,
                                batch_flags, fault_flags,
                                limit_flags],
                       help="cycle-simulate + verify")
    add_common(p)
    p.add_argument("--args", nargs="*", default=[],
                   help="main() arguments")
    p.add_argument("--seed", type=int, default=None,
                   help="seed array contents pseudo-randomly")
    p.add_argument("--no-kernel-fallback", action="store_true",
                   help="with --kernel compiled, raise (exit code 10) "
                        "instead of falling back to the event kernel "
                        "when compilation fails")
    p.add_argument("--profile", action="store_true",
                   help="print throughput, per-pass timing and "
                        "stall attribution")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome-trace JSON of sim events")
    p.add_argument("--stats-json", default=None, metavar="FILE",
                   help="dump SimStats (schema repro.simstats/v3)")
    p.add_argument("--validate-each", action="store_true",
                   help="validate the circuit after every pass")
    add_observe(p)
    add_telemetry(p)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("synth", parents=[passes_flags],
                       help="FPGA/ASIC quality estimate")
    add_common(p)
    p.set_defaults(fn=cmd_synth)

    p = sub.add_parser("workloads", help="list built-in workloads")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("bench",
                       parents=[passes_flags, variant_flags,
                                kernel_flags, batch_flags],
                       help="run a built-in workload, or "
                            "--check fresh throughput vs the "
                            "committed baseline")
    p.add_argument("workload", nargs="?", default=None,
                   help="workload name (optional with --check: "
                        "default is every baseline workload)")
    p.add_argument("--check", action="store_true",
                   help="re-measure kernel throughput and fail if it "
                        "regresses against the committed "
                        "BENCH_sim_throughput.json baseline")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="committed baseline JSON for --check "
                        "(default: benchmarks/results/"
                        "BENCH_sim_throughput.json)")
    p.add_argument("--threshold", type=float, default=0.2,
                   metavar="X",
                   help="--check tolerance: fresh speedup geomeans "
                        "may lag the committed ones by this fraction "
                        "(default 0.2)")
    p.add_argument("--repeat", type=int, default=3, metavar="N",
                   help="--check timing rounds per kernel (default 3)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the --check document here")
    add_observe(p)
    add_telemetry(p)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "report", parents=[passes_flags, variant_flags, batch_flags,
                           kernel_flags],
        help="cross-layer bottleneck report for a workload "
             "(add perf_counters to --passes for hardware counters; "
             "--kernel trace adds the trace-tier subsection)")
    p.add_argument("workload")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the top-stalled-sources table")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the report JSON here")
    p.add_argument("--md", default=None, metavar="FILE",
                   help="write the markdown report here")
    p.add_argument("--stats-json", default=None, metavar="FILE",
                   help="also dump the raw SimStats document")
    add_telemetry(p)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "explore", parents=[variant_flags, kernel_flags, limit_flags],
        help="parallel design-space exploration with caching")
    p.add_argument("workload", nargs="?", default=None)
    p.add_argument("--grid", action="append", default=[],
                   metavar="AXIS=V1,V2,...",
                   help="one design axis (repeatable), e.g. "
                        "--grid banks=1,2,4 --grid tiles=1,2,4; "
                        "sim.* axes override SimParams fields")
    p.add_argument("--random", type=int, default=0, metavar="N",
                   help="sample N points from the grid instead of "
                        "the full cross product (seeded)")
    p.add_argument("--seed", type=int, default=0,
                   help="random-space sampling seed")
    p.add_argument("--pipeline", default=DEFAULT_EXPLORE_TEMPLATE,
                   metavar="TEMPLATE",
                   help="pass-spec template; {axis} substitutes, "
                        "'seg?axis>1' guards a segment (default: "
                        "the img_scale banks x tiles sweep)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker processes (default: min(4, cpus))")
    p.add_argument("--cache-dir", default=".repro-cache",
                   metavar="DIR",
                   help="content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="evaluate every point fresh")
    p.add_argument("--objectives", default="time_us,alms",
                   help="comma-separated minimized metrics for the "
                        "Pareto frontier (time_us, cycles, alms, "
                        "regs, dsps, fpga_mw, asic_area_kum2, "
                        "asic_mw)")
    p.add_argument("--no-check", action="store_true",
                   help="skip behavior verification per point")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the explore report JSON here")
    p.add_argument("--md", default=None, metavar="FILE",
                   help="write the markdown report here")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress lines")
    p.add_argument("--resume", default=None, metavar="SWEEP",
                   help="finish an interrupted sweep from its journal "
                        "(sweep id, unique prefix, or 'last'); "
                        "re-evaluates only missing points")
    p.add_argument("--sweeps-dir", default=None, metavar="DIR",
                   help="sweep-journal directory (default: "
                        ".repro/sweeps)")
    p.add_argument("--no-journal", action="store_true",
                   help="do not journal this sweep (it cannot be "
                        "resumed or sharded)")
    p.add_argument("--sweep-id", default=None, metavar="ID",
                   help="explicit sweep id (default: generated); "
                        "concurrent processes given the same id and "
                        "sweeps dir shard one sweep by lease")
    p.add_argument("--retries", type=int, default=3, metavar="N",
                   help="max attempts per point for transient "
                        "failures (worker death, watchdog, OSError); "
                        "deterministic failures never retry "
                        "(default: 3)")
    p.add_argument("--retry-delay", type=float, default=0.25,
                   metavar="SECONDS",
                   help="base exponential-backoff delay between "
                        "retries (default: 0.25)")
    p.add_argument("--point-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="supervisor-side wall-clock deadline per "
                        "point; a hung worker is killed and the "
                        "point retried")
    p.add_argument("--lease-ttl", type=float, default=None,
                   metavar="SECONDS",
                   help="journal lease TTL for multi-process "
                        "sharding (default: 300)")
    add_telemetry(p)
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser(
        "fuzz", parents=[kernel_flags, limit_flags],
        help="LI-conformance fuzzing under seeded fault plans")
    # fuzz defaults a shorter cycle budget than the other commands.
    p.set_defaults(max_cycles=2_000_000)
    p.add_argument("--workloads", default="all",
                   help="comma-separated workload names (default: all)")
    p.add_argument("--plans", type=int, default=5, metavar="N",
                   help="fault plans per workload (default: 5)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed; plans and verdicts are "
                        "deterministic from it")
    p.add_argument("--intensity", type=float, default=1.0, metavar="X",
                   help="scale fault rates and magnitudes")
    p.add_argument("--passes", default=None,
                   help="pass stack under test (default: the full "
                        "uopt pipeline; pass '' for none)")
    p.add_argument("--differential", action="store_true",
                   help="also compare base vs instrumented circuit "
                        "under the same plan")
    p.add_argument("--artifacts-dir", default=None, metavar="DIR",
                   help="write replayable repro bundles for failures")
    p.add_argument("--compare-kernel", default=None,
                   choices=("event", "dense", "compiled", "trace"),
                   help="also run every case on this kernel and "
                        "require bit-identical behavior including "
                        "cycle counts")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the fuzz report JSON here")
    p.add_argument("--no-minimize", action="store_true",
                   help="skip fault-category minimization on failure")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-case progress lines")
    p.add_argument("--replay", default=None, metavar="DIR",
                   help="re-run the case captured in a repro bundle")
    p.add_argument("--batch", action="store_true",
                   help="add batch-conformance cases: per-lane "
                        "identity of batched runs, and the enforced "
                        "scalar fallback under fault plans")
    add_telemetry(p)
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "runs", help="browse the telemetry run ledger")
    p.add_argument("action", choices=("list", "show", "diff"),
                   help="list all runs / show one / diff two")
    p.add_argument("refs", nargs="*",
                   help="run reference(s): run_id prefix, index "
                        "(-2 = second newest), or 'last'")
    p.add_argument("--dir", default=None, metavar="DIR",
                   help="ledger directory (default: .repro, or "
                        "--telemetry-dir)")
    p.add_argument("--json", action="store_true",
                   help="print records as JSON")
    p.set_defaults(fn=cmd_runs)

    p = sub.add_parser(
        "sweeps", help="browse sweep journals")
    p.add_argument("action", choices=("list", "show"),
                   help="list all sweeps / show one")
    p.add_argument("refs", nargs="*",
                   help="sweep reference: id prefix or 'last'")
    p.add_argument("--dir", default=None, metavar="DIR",
                   help="sweeps directory (default: .repro/sweeps)")
    p.add_argument("--json", action="store_true",
                   help="print records as JSON")
    p.set_defaults(fn=cmd_sweeps)

    p = sub.add_parser(
        "serve",
        help="run the evaluation daemon (HTTP-lite/NDJSON; dedups "
             "identical in-flight requests, coalesces compatible "
             "ones into batched runs)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8651,
                   help="TCP port (0 picks a free one; default 8651)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="serve on a Unix socket instead of TCP")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker pool size (default: min(4, cpus))")
    p.add_argument("--executor", default="process",
                   choices=("process", "thread"),
                   help="worker pool kind (process pools survive "
                        "worker crashes; default process)")
    p.add_argument("--max-batch", type=int, default=8, metavar="N",
                   help="max compatible scalar requests coalesced "
                        "into one batched simulation (default 8)")
    p.add_argument("--heartbeat", type=float, default=2.0,
                   metavar="SECONDS",
                   help="heartbeat interval on open connections")
    p.add_argument("--job-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="supervisor-side deadline per execution; a "
                        "hung worker is killed and the job retried")
    p.add_argument("--retries", type=int, default=3, metavar="N",
                   help="max attempts per job for transient failures "
                        "(default: 3)")
    p.add_argument("--retry-delay", type=float, default=0.25,
                   metavar="SECONDS",
                   help="base exponential-backoff delay (default: "
                        "0.25)")
    add_telemetry(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "client",
        help="talk to a repro serve daemon")
    csub = p.add_subparsers(dest="action", required=True)

    c = csub.add_parser(
        "evaluate",
        parents=[client_flags, passes_flags, variant_flags,
                 kernel_flags, batch_flags, fault_flags, limit_flags],
        help="evaluate a workload or MiniC file on the daemon")
    c.add_argument("target",
                   help="workload name or MiniC source file")
    c.add_argument("--args", nargs="*", default=[],
                   help="main() arguments (source files only)")
    c.add_argument("--seed", type=int, default=None,
                   help="seed array contents pseudo-randomly "
                        "(source files only)")
    c.add_argument("--no-check", action="store_true",
                   help="skip server-side behavior verification")
    c.add_argument("--json", action="store_true",
                   help="print the full response document")
    add_observe(c)
    c.set_defaults(fn=cmd_client_evaluate)

    c = csub.add_parser(
        "explore",
        parents=[client_flags, variant_flags, kernel_flags],
        help="run a sweep through the daemon's queue")
    c.add_argument("workload")
    c.add_argument("--grid", action="append", default=[],
                   metavar="AXIS=V1,V2,...",
                   help="one design axis (repeatable)")
    c.add_argument("--pipeline", default=DEFAULT_EXPLORE_TEMPLATE,
                   metavar="TEMPLATE",
                   help="pass-spec template ({axis} substitutes, "
                        "'seg?axis>1' guards)")
    c.add_argument("--objectives", default="time_us,alms")
    c.add_argument("--max-cycles", type=int, default=5_000_000)
    c.add_argument("--no-check", action="store_true")
    c.add_argument("--json", default=None, metavar="FILE",
                   help="write the explore report JSON here")
    c.set_defaults(fn=cmd_client_explore)

    c = csub.add_parser("report", parents=[client_flags],
                        help="scheduler counters + queue state")
    c.add_argument("--json", action="store_true")
    c.set_defaults(fn=cmd_client_report)

    c = csub.add_parser("health", parents=[client_flags],
                        help="liveness probe")
    c.set_defaults(fn=cmd_client_health)

    c = csub.add_parser("shutdown", parents=[client_flags],
                        help="stop the daemon gracefully")
    c.set_defaults(fn=cmd_client_shutdown)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "telemetry_trace", None)
    wants_telemetry = bool(getattr(args, "telemetry", False)
                           or trace_out
                           or telemetry.env_requests_telemetry())
    if wants_telemetry:
        telemetry.enable()
    started = time.time()
    t0 = time.perf_counter()
    status, code, err_doc = "ok", 0, None
    try:
        code = args.fn(args)
        if code != 0:
            status = "failed"
    except ReproError as exc:
        if getattr(args, "json_errors", False):
            print(json.dumps(error_document(exc), indent=1,
                             default=str))
        else:
            print(f"error: {exc}", file=sys.stderr)
        status, code = "error", exit_code_for(exc)
        err_doc = error_document(exc)
    if wants_telemetry:
        _finish_telemetry(args, argv, status=status, code=code,
                          wall_s=time.perf_counter() - t0,
                          started=started, error=err_doc,
                          trace_out=trace_out)
    return code


def _finish_telemetry(args, argv, *, status: str, code: int,
                      wall_s: float, started: float, error,
                      trace_out: Optional[str]) -> None:
    """Append this invocation to the run ledger (+ optional Perfetto
    trace).  Browsing the ledger (or the sweep journals) is not
    itself a run worth recording, so ``repro runs`` and ``repro
    sweeps`` skip the append."""
    from .telemetry import RunLedger

    try:
        if trace_out:
            telemetry.write_perfetto(trace_out)
            print(f"wrote {trace_out} (open in ui.perfetto.dev "
                  f"or chrome://tracing)", file=sys.stderr)
        if args.command not in ("runs", "sweeps"):
            record = telemetry.collect_record(
                command=args.command,
                argv=list(argv) if argv is not None else sys.argv[1:],
                status=status, exit_code=code, wall_s=wall_s,
                started=started, error=error)
            ledger = RunLedger(getattr(args, "telemetry_dir", None))
            run_id = ledger.append(record)
            print(f"telemetry: recorded run {run_id} "
                  f"({ledger.path})", file=sys.stderr)
    except OSError as exc:
        print(f"telemetry: could not persist run data: {exc}",
              file=sys.stderr)
    finally:
        telemetry.disable()


if __name__ == "__main__":
    raise SystemExit(main())

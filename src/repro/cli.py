"""Command-line interface: ``python -m repro <command>``.

Commands
--------
translate   MiniC file -> uIR; print stats, optionally dump JSON/dot/Chisel
simulate    compile + optimize + cycle-simulate + verify vs interpreter
synth       report the analytic FPGA/ASIC synthesis estimate
workloads   list the built-in paper workloads
bench       run one built-in workload through a pass stack
report      cross-layer bottleneck report (sim + opt + synth)

Pass stacks are comma-separated registry names, e.g.
``--passes memory_localization,op_fusion`` (see ``repro.opt.PASS_REGISTRY``).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from .errors import ReproError
from .frontend import compile_minic, translate_module
from .frontend.interp import Interpreter, Memory
from .opt import PASS_REGISTRY, PassManager
from .rtl import emit_chisel, emit_verilog, synthesize
from .core.serialize import save_circuit, to_dot
from .sim import SimParams, simulate
from .types import FloatType


def _parse_passes(spec: Optional[str]):
    if not spec:
        return []
    passes = []
    for name in spec.split(","):
        name = name.strip()
        if name not in PASS_REGISTRY:
            raise ReproError(
                f"unknown pass {name!r}; known: "
                f"{', '.join(sorted(PASS_REGISTRY))}")
        passes.append(PASS_REGISTRY[name]())
    return passes


def _parse_args_values(module, raw: Sequence[str]) -> List:
    main = module.main
    if len(raw) != len(main.args):
        raise ReproError(
            f"@main takes {len(main.args)} argument(s) "
            f"({', '.join(f'{a.name}: {a.type}' for a in main.args)}), "
            f"got {len(raw)}")
    values: List = []
    for text, arg in zip(raw, main.args):
        if isinstance(arg.type, FloatType):
            values.append(float(text))
        else:
            values.append(int(text))
    return values


def _seed_memory(memory: Memory, seed: Optional[int]) -> None:
    if seed is None:
        return
    rng = random.Random(seed)
    for name, glob in memory.module.globals.items():
        base = memory.base[name]
        for w in range(glob.size_words):
            if glob.elem.is_float or glob.elem.is_tensor:
                memory.write(base + w, round(rng.uniform(-2, 2), 3))
            else:
                memory.write(base + w, rng.randint(-50, 50))


def _load_circuit_pipeline(args):
    with open(args.file) as fh:
        source = fh.read()
    module = compile_minic(source, filename=args.file)
    circuit = translate_module(module, name=args.file)
    log = PassManager(_parse_passes(args.passes)).run(circuit)
    return module, circuit, log


def _resolve_observe(args) -> str:
    """--obs-level wins; --trace-out implies "trace"."""
    level = getattr(args, "obs_level", None)
    if getattr(args, "trace_out", None):
        if level == "off":
            raise ReproError(
                "--trace-out needs tracing; drop --obs-level off")
        return "trace"
    return level or "counters"


def cmd_translate(args) -> int:
    module, circuit, log = _load_circuit_pipeline(args)
    print(circuit)
    for task in circuit.tasks.values():
        print(f"  {task.name:<28} kind={task.kind:<5} "
              f"nodes={len(task.dataflow.nodes):<4} "
              f"tiles={task.num_tiles}")
    for result in log:
        print(f"  pass {result.pass_name}: changed={result.changed} "
              f"dN={result.delta_nodes} dE={result.delta_edges}")
    if args.json:
        save_circuit(circuit, args.json)
        print(f"wrote {args.json}")
    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(to_dot(circuit))
        print(f"wrote {args.dot}")
    if args.chisel:
        with open(args.chisel, "w") as fh:
            fh.write(emit_chisel(circuit))
        print(f"wrote {args.chisel}")
    if args.verilog:
        with open(args.verilog, "w") as fh:
            fh.write(emit_verilog(circuit))
        print(f"wrote {args.verilog}")
    return 0


def cmd_simulate(args) -> int:
    import time

    if args.trace_out and args.kernel != "event":
        raise ReproError(
            "--trace-out requires the event kernel "
            "(rerun without --kernel dense)")
    with open(args.file) as fh:
        source = fh.read()
    module = compile_minic(source, filename=args.file)
    circuit = translate_module(module, name=args.file)
    manager = PassManager(_parse_passes(args.passes),
                          validate_each=args.validate_each)
    t_passes = time.perf_counter()
    manager.run(circuit)
    t_passes = time.perf_counter() - t_passes
    values = _parse_args_values(module, args.args)

    golden = Memory(module)
    _seed_memory(golden, args.seed)
    Interpreter(module, golden).run(*values)

    mem = Memory(module)
    _seed_memory(mem, args.seed)
    observe = _resolve_observe(args)
    params = SimParams(max_cycles=args.max_cycles, kernel=args.kernel,
                       observe=observe,
                       trace_capacity=args.trace_capacity)
    t_sim = time.perf_counter()
    result = simulate(circuit, mem, values, params)
    t_sim = time.perf_counter() - t_sim
    ok = mem.words == golden.words
    print(f"cycles: {result.cycles}")
    if result.results:
        print(f"returned: {result.results}")
    print(f"behavior vs interpreter: {'OK' if ok else 'MISMATCH'}")
    for key, value in sorted(result.stats.summary().items()):
        print(f"  {key}: {value}")
    if args.profile:
        print(f"\nthroughput: {result.cycles / t_sim:,.0f} simulated "
              f"cycles/s ({args.kernel} kernel, {t_sim:.3f}s wall)")
        if manager.log:
            print(f"\npass pipeline ({t_passes * 1e3:.1f}ms):")
            print(manager.timing_report())
        stalls = result.stats.stall_cycles
        if stalls:
            total = sum(stalls.values())
            print("\nstall attribution (instance-cycles):")
            for cause, cyc in stalls.most_common():
                print(f"  {cause:<16} {cyc:>8}  "
                      f"({100.0 * cyc / total:.1f}%)")
            print("top stalled nodes:")
            for label, cause, cyc in result.stats.top_stalled_nodes(8):
                print(f"  {label:<32} {cause:<16} {cyc:>8}")
        sources = result.stats.top_stalled_sources(8)
        if sources:
            print("top stalled source lines:")
            for loc, cause, cyc in sources:
                print(f"  {loc:<36} {cause:<16} {cyc:>8}")
    if args.stats_json:
        result.stats.dump_json(args.stats_json)
        print(f"wrote {args.stats_json}")
    if args.trace_out:
        if result.observer is None:
            raise ReproError(
                "--trace-out requires the event kernel "
                "(rerun without --kernel dense)")
        result.observer.write_chrome_trace(args.trace_out)
        print(f"wrote {args.trace_out} "
              f"(load in chrome://tracing or Perfetto)")
    return 0 if ok else 1


def cmd_synth(args) -> int:
    _module, circuit, _log = _load_circuit_pipeline(args)
    report = synthesize(circuit)
    for key, value in report.row().items():
        print(f"  {key}: {value}")
    return 0


def cmd_workloads(_args) -> int:
    from .workloads import WORKLOADS
    for name, w in WORKLOADS.items():
        variants = "+" + ",".join(w.variants) if w.variants else ""
        print(f"  {name:<10} {w.category:<11} args={w.args} "
              f"{variants}")
    return 0


def cmd_bench(args) -> int:
    from .bench import run_workload
    params = SimParams(observe=_resolve_observe(args),
                       trace_capacity=args.trace_capacity)
    result = run_workload(args.workload,
                          _parse_passes(args.passes),
                          config=args.passes or "baseline",
                          variant=args.variant,
                          params=params)
    print(f"{result.workload}/{result.config}: {result.cycles} cycles "
          f"@ {result.fpga_mhz:.0f} MHz = {result.time_us:.2f} us")
    print("behavior verified against the reference interpreter")
    return 0


def cmd_report(args) -> int:
    from .bench import run_workload
    from .report import build_report, dump_report, render_markdown
    passes = _parse_passes(args.passes)
    result = run_workload(args.workload, passes,
                          config=args.passes or "baseline",
                          variant=args.variant)
    report = build_report(result, top_n=args.top)
    if args.json or args.md:
        dump_report(report, json_path=args.json, md_path=args.md)
        for path in (args.json, args.md):
            if path:
                print(f"wrote {path}")
    else:
        print(render_markdown(report))
    if args.stats_json:
        result.stats.dump_json(args.stats_json)
        print(f"wrote {args.stats_json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help="MiniC source file")
        p.add_argument("--passes", default="",
                       help="comma-separated uopt pass names")

    p = sub.add_parser("translate", help="MiniC -> uIR (+dumps)")
    add_common(p)
    p.add_argument("--json", help="write circuit JSON here")
    p.add_argument("--dot", help="write Graphviz dot here")
    p.add_argument("--chisel", help="write Chisel text here")
    p.add_argument("--verilog", help="write Verilog skeleton here")
    p.set_defaults(fn=cmd_translate)

    def add_observe(p):
        p.add_argument("--obs-level", default=None,
                       choices=("off", "counters", "trace"),
                       help="observability level (default: counters; "
                            "--trace-out implies trace)")
        p.add_argument("--trace-capacity", type=int, default=65536,
                       metavar="N",
                       help="trace ring-buffer capacity in events")

    p = sub.add_parser("simulate", help="cycle-simulate + verify")
    add_common(p)
    p.add_argument("--args", nargs="*", default=[],
                   help="main() arguments")
    p.add_argument("--seed", type=int, default=None,
                   help="seed array contents pseudo-randomly")
    p.add_argument("--max-cycles", type=int, default=5_000_000)
    p.add_argument("--kernel", default="event",
                   choices=("event", "dense"),
                   help="simulation kernel (default: event)")
    p.add_argument("--profile", action="store_true",
                   help="print throughput, per-pass timing and "
                        "stall attribution")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome-trace JSON of sim events")
    p.add_argument("--stats-json", default=None, metavar="FILE",
                   help="dump SimStats (schema repro.simstats/v3)")
    p.add_argument("--validate-each", action="store_true",
                   help="validate the circuit after every pass")
    add_observe(p)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("synth", help="FPGA/ASIC quality estimate")
    add_common(p)
    p.set_defaults(fn=cmd_synth)

    p = sub.add_parser("workloads", help="list built-in workloads")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("bench", help="run a built-in workload")
    p.add_argument("workload")
    p.add_argument("--passes", default="")
    p.add_argument("--variant", default="base")
    add_observe(p)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "report", help="cross-layer bottleneck report for a workload")
    p.add_argument("workload")
    p.add_argument("--passes", default="",
                   help="comma-separated uopt pass names "
                        "(add perf_counters for hardware counters)")
    p.add_argument("--variant", default="base")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the top-stalled-sources table")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the report JSON here")
    p.add_argument("--md", default=None, metavar="FILE",
                   help="write the markdown report here")
    p.add_argument("--stats-json", default=None, metavar="FILE",
                   help="also dump the raw SimStats document")
    p.set_defaults(fn=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""Cross-layer bottleneck analyzer (the ``repro report`` command).

Joins the three observability surfaces the toolchain produces for one
workload into a single document:

* **sim** — attributed stall cycles (per cause / node / *source
  line*), memory-site arbitration stalls, and the values of any
  hardware performance counters inserted by the ``perf_counters``
  pass;
* **opt** — the PassManager log: which uopt passes ran, what they
  changed, and how large the structural edit was (Table-4 currency);
* **synth** — the analytic Table-2 row plus the PMU's own area bill.

On top of the joined data it renders a *bound-by verdict* per task
block (memory- / compute- / backpressure- / task-queue-bound) and a
top-N table of MiniC source lines ranked by attributed stall cycles —
the "where is my accelerator spending its time, in terms I wrote"
summary the paper's workflow calls for.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .sim.stats import SimStats

REPORT_SCHEMA = "repro.report/v1"

#: Verdict labels and the stall causes that vote for each.
BOUND_BY_GROUPS: Dict[str, tuple] = {
    "memory-bound": ("dram_inflight", "bank_conflict", "junction_arb"),
    "backpressure-bound": ("downstream_full",),
    "task-queue-bound": ("task_queue_full", "child_wait"),
    "compute-bound": ("upstream_empty", "iter_window", "idle"),
}


def _jsonify(value):
    """Best-effort JSON coercion for pass detail payloads."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _task_verdicts(stats: SimStats, tasks: List[str]) -> Dict[str, Dict]:
    """Per-task bound-by verdict from the node-level stall breakdown."""
    per_task: Dict[str, Dict[str, int]] = {name: {} for name in tasks}
    for label, causes in stats.node_stalls.items():
        task = label.split(".", 1)[0]
        bucket = per_task.setdefault(task, {})
        for cause, cycles in causes.items():
            bucket[cause] = bucket.get(cause, 0) + cycles
    verdicts: Dict[str, Dict] = {}
    for task in sorted(per_task):
        causes = per_task[task]
        groups = {
            verdict: sum(causes.get(c, 0) for c in members)
            for verdict, members in BOUND_BY_GROUPS.items()
        }
        total = sum(groups.values())
        if total == 0:
            # Never observed asleep: the block is limited by its own
            # datapath throughput, not by anything it waits on.
            bound_by = "compute-bound"
        else:
            bound_by = max(groups, key=lambda v: (groups[v], v))
        verdicts[task] = {
            "bound_by": bound_by,
            "stall_cycles_total": total,
            "stall_cycles_by_group": groups,
            "stall_cycles_by_cause": dict(sorted(causes.items())),
        }
    return verdicts


def _counter_values(circuit, stats: SimStats) -> Dict[str, Dict[str, int]]:
    """Read back every PerfCounterBank in the circuit (the analytic
    stand-in for an AXI-lite PMU readout after the run)."""
    out: Dict[str, Dict[str, int]] = {}
    if circuit is None:
        return out
    for structure in circuit.structures:
        if getattr(structure, "KIND", "") == "perf_counters":
            out[structure.name] = structure.sample(stats)
    return out


def _batch_layer(stats: SimStats, batch=None) -> Optional[Dict]:
    """The ``sim.batch`` section: how a batched run actually executed.

    ``batch`` is an optional :class:`repro.sim.BatchResult` for the
    richer live view (deopt cause, per-lane errors and verification);
    without it the section is rebuilt from the SimStats batch fields,
    so saved stats documents render too.
    """
    if batch is not None:
        doc: Dict = {
            "lanes": batch.lanes,
            "mode": batch.mode,
            "lane_cycles": list(batch.stats.lane_cycles),
            "failed_lanes": [i for i, e in enumerate(batch.errors)
                             if e is not None],
        }
        if batch.deopt is not None:
            doc["deopt"] = {
                "error": batch.deopt.get("error"),
                "message": batch.deopt.get("message"),
            }
        if batch.verified is not None:
            doc["verified_lanes"] = sum(batch.verified)
        return doc
    if not getattr(stats, "batch_lanes", 0):
        return None
    return {
        "lanes": stats.batch_lanes,
        "mode": stats.batch_mode,
        "lane_cycles": list(stats.lane_cycles),
    }


def _telemetry_layer() -> Optional[Dict]:
    """Live telemetry snapshot (stage spans + metrics), when enabled."""
    from . import telemetry
    if not telemetry.enabled():
        return None
    tr = telemetry.tracer()
    return {
        "stages_ms": {name: round(sec * 1e3, 3)
                      for name, sec in tr.stage_durations().items()},
        "spans": len(tr.finished()),
        "metrics": telemetry.metrics().snapshot(),
    }


def build_report(run, top_n: int = 10, batch=None,
                 trace: Optional[Dict] = None) -> Dict:
    """Assemble the cross-layer report document for one RunResult.

    ``batch`` optionally attaches a :class:`repro.sim.BatchResult`
    whose lanes this run represents (``repro report --batch N``);
    ``trace`` attaches a trace-tier report (``SimResult.trace``,
    produced under ``--kernel trace``) rendered as the "Trace tier"
    subsection.
    """
    stats: SimStats = run.stats
    circuit = run.circuit
    tasks = sorted(circuit.tasks) if circuit is not None else []

    top_sources = [
        {"loc": loc, "cause": cause, "cycles": cycles}
        for loc, cause, cycles in stats.top_stalled_sources(top_n)
    ]
    top_nodes = [
        {"node": label, "cause": cause, "cycles": cycles}
        for label, cause, cycles in stats.top_stalled_nodes(top_n)
    ]

    sim_layer = {
        "kernel": stats.kernel,
        "cycles": run.cycles,
        "time_us": round(run.time_us, 3),
        "total_stall_cycles": stats.total_stall_cycles,
        "stall_cycles_by_cause": dict(sorted(
            stats.stall_cycles.items())),
        "site_stalls": dict(sorted(stats.site_stalls.items())),
        "top_sources": top_sources,
        "top_nodes": top_nodes,
        "counters": _counter_values(circuit, stats),
    }
    batch_layer = _batch_layer(stats, batch)
    if batch_layer is not None:
        sim_layer["batch"] = batch_layer
    if trace is not None:
        sim_layer["trace"] = trace

    opt_layer = {
        "passes": [
            {
                "name": r.pass_name,
                "changed": r.changed,
                "nodes_added": r.nodes_added,
                "nodes_removed": r.nodes_removed,
                "edges_added": r.edges_added,
                "edges_removed": r.edges_removed,
                "wall_ms": round(r.wall_ms, 2),
                "details": _jsonify(r.details),
            }
            for r in run.pass_log
        ],
    }

    synth = run.synth
    synth_layer = {
        "table2_row": synth.row(),
        "pmu_overhead": {
            "counters": synth.pmu_counters,
            "alms": synth.pmu_alms,
            "regs": synth.pmu_regs,
            "area_kum2": round(synth.pmu_area_kum2, 3),
        },
    }

    doc = {
        "schema": REPORT_SCHEMA,
        "workload": run.workload,
        "config": run.config,
        "variant": run.variant,
        "layers": {
            "sim": sim_layer,
            "opt": opt_layer,
            "synth": synth_layer,
        },
        "verdicts": _task_verdicts(stats, tasks),
    }
    tele = _telemetry_layer()
    if tele is not None:
        doc["telemetry"] = tele
    return doc


# -- markdown rendering -----------------------------------------------------

def _md_table(headers: List[str], rows: List[List]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return lines


def render_markdown(report: Dict) -> str:
    """Human-readable bottleneck report (same data as the JSON)."""
    sim = report["layers"]["sim"]
    opt = report["layers"]["opt"]
    synth = report["layers"]["synth"]
    out: List[str] = []
    out.append(f"# Bottleneck report: {report['workload']} "
               f"({report['config']}, variant={report['variant']})")
    out.append("")
    out.append(f"Simulated **{sim['cycles']} cycles** on the "
               f"`{sim['kernel']}` kernel "
               f"(~{sim['time_us']} us at the estimated fmax); "
               f"**{sim['total_stall_cycles']}** node-cycles were "
               f"spent stalled.")
    out.append("")

    if sim.get("batch"):
        b = sim["batch"]
        out.append("## Batched simulation")
        out.append("")
        line = (f"{b['lanes']} lanes ran in **{b['mode']}** mode; "
                f"lane cycles: "
                f"{', '.join(str(c) for c in b['lane_cycles'])}.")
        if b.get("failed_lanes"):
            line += (" Failed lanes: "
                     f"{', '.join(str(i) for i in b['failed_lanes'])}.")
        if "verified_lanes" in b:
            line += (f" {b['verified_lanes']}/{b['lanes']} lanes "
                     f"verified against the golden reference.")
        out.append(line)
        if b.get("deopt"):
            out.append("")
            out.append(f"Deopt cause: `{b['deopt'].get('error')}` — "
                       f"{b['deopt'].get('message')}")
        out.append("")

    if sim.get("trace"):
        t = sim["trace"]
        out.append("## Trace tier")
        out.append("")
        out.append(
            f"**{t['coverage']:.1%}** of simulated cycles ran outside "
            f"the scheduler ({t['trace_cycles']} superblock cycles + "
            f"{t['jumped_cycles']} jumped); {t['formed']} trace "
            f"formation(s), {t['warm']} warm (re-armed from a proven "
            f"artifact without re-detection).")
        if t.get("deopts"):
            out.append("")
            out.append("Deopt reasons: " + ", ".join(
                f"`{reason}` x{n}"
                for reason, n in sorted(t["deopts"].items())) + ".")
        if t.get("per_task"):
            out.append("")
            out.extend(_md_table(
                ["task block", "formations", "steady cycles"],
                [[f"`{name}`", d.get("formed", 0), d.get("cycles", 0)]
                 for name, d in t["per_task"].items()]))
        out.append("")

    out.append("## Bound-by verdicts")
    out.append("")
    rows = []
    for task, v in report["verdicts"].items():
        groups = v["stall_cycles_by_group"]
        rows.append([
            f"`{task}`", f"**{v['bound_by']}**",
            v["stall_cycles_total"],
            groups.get("memory-bound", 0),
            groups.get("compute-bound", 0),
            groups.get("backpressure-bound", 0),
            groups.get("task-queue-bound", 0),
        ])
    out.extend(_md_table(
        ["task block", "verdict", "stall cyc", "mem", "compute",
         "backpr", "queue"], rows))
    out.append("")

    out.append("## Top stalled source lines")
    out.append("")
    if sim["top_sources"]:
        out.extend(_md_table(
            ["source", "cause", "cycles"],
            [[f"`{e['loc']}`", e["cause"], e["cycles"]]
             for e in sim["top_sources"]]))
    else:
        out.append("(no attributed source-line stalls)")
    out.append("")

    if sim["counters"]:
        out.append("## Hardware performance counters")
        out.append("")
        for bank, counters in sim["counters"].items():
            out.append(f"### bank `{bank}`")
            out.append("")
            out.extend(_md_table(
                ["counter", "value"],
                [[f"`{n}`", v] for n, v in counters.items()]))
            out.append("")

    out.append("## Optimization passes")
    out.append("")
    if opt["passes"]:
        out.extend(_md_table(
            ["pass", "changed", "dN", "dE", "ms"],
            [[p["name"], p["changed"],
              p["nodes_added"] - p["nodes_removed"],
              p["edges_added"] - p["edges_removed"],
              p["wall_ms"]] for p in opt["passes"]]))
    else:
        out.append("(baseline: no passes applied)")
    out.append("")

    out.append("## Synthesis estimate")
    out.append("")
    row = synth["table2_row"]
    out.extend(_md_table(list(row.keys()), [list(row.values())]))
    pmu = synth["pmu_overhead"]
    if pmu["counters"]:
        out.append("")
        out.append(f"PMU overhead: {pmu['counters']} counters, "
                   f"{pmu['alms']} ALMs, {pmu['regs']} regs, "
                   f"{pmu['area_kum2']} kum2 ASIC area "
                   f"(included in the totals above).")
    out.append("")

    tele = report.get("telemetry")
    if tele:
        out.append("## Telemetry")
        out.append("")
        if tele["stages_ms"]:
            out.extend(_md_table(
                ["stage", "wall ms"],
                [[f"`{name}`", ms]
                 for name, ms in sorted(tele["stages_ms"].items())]))
            out.append("")
        out.append(f"{tele['spans']} spans recorded; "
                   f"{len(tele['metrics']['metrics'])} metric(s).")
        out.append("")
    return "\n".join(out)


def dump_report(report: Dict, json_path: Optional[str] = None,
                md_path: Optional[str] = None) -> None:
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
    if md_path:
        with open(md_path, "w") as fh:
            fh.write(render_markdown(report))


# -- design-space exploration rendering -------------------------------------

def render_explore_markdown(doc: Dict) -> str:
    """Markdown report for a ``repro.explore/v1`` document.

    Takes the JSON form (:meth:`repro.dse.ExploreReport.to_json`), so
    it renders saved reports as well as live ones.
    """
    counts = doc["counts"]
    out: List[str] = []
    out.append(f"# Design-space exploration: {doc['workload']} "
               f"(variant={doc['variant']})")
    out.append("")
    out.append(f"{counts['points']} points — {counts['ok']} ok, "
               f"{counts['failed']} failed, "
               f"{counts['cache_hits']} from cache, "
               f"{counts['fresh']} fresh — in "
               f"{doc['wall_s']:.2f}s with {doc['workers']} worker(s) "
               f"on the `{doc['sim']['kernel']}` kernel.")
    if doc.get("template"):
        out.append("")
        out.append(f"Pipeline template: `{doc['template']}`")
    cache = doc.get("cache")
    if cache:
        out.append("")
        out.append(f"Result cache: {cache.get('object_hits', 0)} "
                   f"object hits, {cache.get('object_misses', 0)} "
                   f"misses, {cache.get('object_corrupt', 0)} corrupt; "
                   f"{cache.get('index_hits', 0)} request-index hits, "
                   f"{cache.get('index_misses', 0)} index misses.")
    durability = doc.get("durability") or {}
    if any(durability.values()) or doc.get("sweep_id"):
        out.append("")
        out.append("## Durability")
        out.append("")
        if doc.get("sweep_id"):
            out.append(f"Sweep journal `{doc['sweep_id']}` "
                       f"(`repro sweeps show {doc['sweep_id']}`; "
                       f"resumable with `repro explore --resume "
                       f"{doc['sweep_id']}`).")
            out.append("")
        out.append(f"{durability.get('retries', 0)} retries, "
                   f"{durability.get('worker_deaths', 0)} worker "
                   f"deaths, {durability.get('timeouts', 0)} "
                   f"supervisor timeouts, "
                   f"{durability.get('quarantined', 0)} quarantined "
                   f"poison points, "
                   f"{durability.get('lease_reclaims', 0)} lease "
                   f"reclaims, {durability.get('resumed', 0)} points "
                   f"restored from the journal.")
    out.append("")

    axes = sorted({k for p in doc["points"] for k in p["params"]})
    ok_points = [p for p in doc["points"] if p["status"] == "ok"]
    if ok_points:
        out.append("## Evaluated points")
        out.append("")
        rows = []
        pareto = set(doc["pareto"])
        for p in ok_points:
            rows.append(
                [p["params"].get(a, "") for a in axes]
                + [p["cycles"], f"{p['time_us']:.2f}", p["alms"],
                   round(p["fpga_mw"]), p["source"],
                   "*" if p["index"] in pareto else ""])
        out.extend(_md_table(
            axes + ["cycles", "time_us", "ALMs", "mW", "source",
                    "pareto"], rows))
        out.append("")

        out.append("## Pareto frontier "
                   f"({' / '.join(doc['objectives'])}, minimized)")
        out.append("")
        by_index = {p["index"]: p for p in ok_points}
        rows = []
        for index in doc["pareto"]:
            p = by_index[index]
            rows.append([p["params"].get(a, "") for a in axes]
                        + [f"{p['time_us']:.2f}", p["alms"],
                           round(p["fpga_mw"])])
        out.extend(_md_table(axes + ["time_us", "ALMs", "mW"], rows))
        out.append("")

    failures = [p for p in doc["points"] if p["status"] != "ok"]
    if failures:
        out.append("## Failed points")
        out.append("")
        rows = []
        for p in failures:
            err = p.get("error") or {}
            rows.append(
                [p["params"].get(a, "") for a in axes]
                + [err.get("error", "?"), err.get("exit_code", ""),
                   str(err.get("message", ""))[:80]])
        out.extend(_md_table(axes + ["error", "exit", "message"],
                             rows))
        out.append("")
        for p in failures:
            diags = (p.get("error") or {}).get("diagnostics")
            if diags:
                out.append(f"### point {p['index']} diagnostics")
                out.append("")
                for diag in (diags if isinstance(diags, list)
                             else [diags]):
                    out.append(f"- {diag}")
                out.append("")
    return "\n".join(out)

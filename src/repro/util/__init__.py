"""Shared utilities (deterministic RNG plumbing, small helpers)."""

from .rng import (derive_seed, rng_for, seed_memory, site_fraction,
                  site_int)  # noqa: F401

"""Shared utilities (deterministic RNG plumbing, durable JSONL,
small helpers)."""

from .jsonl import append_jsonl, dumps_line, read_jsonl  # noqa: F401
from .rng import (derive_seed, rng_for, seed_memory, site_fraction,
                  site_int)  # noqa: F401

"""Deterministic RNG plumbing shared by the whole repo.

One user-facing ``--seed`` must reproduce *everything* derived from
randomness — memory images, workload data, fault plans, fuzz verdicts —
across processes and platforms.  Python's builtin ``hash`` is salted
per process, so all derivation here goes through SHA-256 of the
``repr`` of the key components, which is stable everywhere.

Two layers:

* **streams** — :func:`rng_for` hands out an independent
  ``random.Random`` per named stream of one root seed, so consuming
  numbers for (say) a fault plan can never shift the sequence used to
  seed memory contents.  ``rng_for(seed)`` with no stream labels is
  exactly ``random.Random(seed)``, keeping every pre-existing golden
  data set bit-identical.
* **sites** — :func:`site_fraction` / :func:`site_int` give O(1)
  order-independent draws keyed by an arbitrary tuple (task name, node
  index, cycle...).  The fault injector uses these so a per-site
  decision does not depend on the order sites are visited in.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

_MASK64 = (1 << 64) - 1


def _digest(*components) -> bytes:
    payload = "\x1f".join(repr(c) for c in components)
    return hashlib.sha256(payload.encode("utf-8")).digest()


def derive_seed(*components) -> int:
    """Stable 64-bit seed derived from arbitrary key components."""
    return int.from_bytes(_digest(*components)[:8], "big") & _MASK64


def rng_for(seed: Optional[int], *stream) -> random.Random:
    """Independent ``random.Random`` for one stream of a root seed.

    With no stream labels this is exactly ``random.Random(seed)`` —
    the historical behavior every seeded golden data set was generated
    with — so centralizing call sites on this helper changes nothing.
    """
    if not stream:
        return random.Random(seed)
    return random.Random(derive_seed("stream", seed, *stream))


def site_fraction(seed: Optional[int], *site) -> float:
    """Uniform [0, 1) draw keyed by (seed, *site); order-independent."""
    return derive_seed("site", seed, *site) / float(1 << 64)


def site_int(seed: Optional[int], lo: int, hi: int, *site) -> int:
    """Uniform integer in [lo, hi] keyed by (seed, *site)."""
    if hi <= lo:
        return lo
    return lo + derive_seed("site-int", seed, *site) % (hi - lo + 1)


def seed_memory(memory, seed: Optional[int]) -> None:
    """Fill every global array of ``memory`` pseudo-randomly.

    Shared by the CLI, the bench harness, and the fuzzer so one seed
    reproduces memory contents end-to-end.  The sequence is the
    historical ``random.Random(seed)`` one.
    """
    if seed is None:
        return
    rng = rng_for(seed)
    for name, glob in memory.module.globals.items():
        base = memory.base[name]
        for w in range(glob.size_words):
            if glob.elem.is_float or glob.elem.is_tensor:
                memory.write(base + w, round(rng.uniform(-2, 2), 3))
            else:
                memory.write(base + w, rng.randint(-50, 50))

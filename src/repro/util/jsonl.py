"""Durable JSONL: atomic appends and torn-line-tolerant reads.

The shared write/read discipline behind every append-only store in the
toolchain — the telemetry run ledger (:mod:`repro.telemetry.ledger`)
and the sweep journal (:mod:`repro.dse.journal`):

* **appends are atomic** — a record is serialized to exactly one line
  and written with a single ``os.write`` on an ``O_APPEND``-opened
  descriptor.  POSIX guarantees the kernel applies each such write at
  the current end of file, so concurrent processes sharing a file
  (parallel sweeps, CI shards, multi-host journals) interleave whole
  records, never bytes;
* **reads skip what they cannot parse** — blank lines, torn writes,
  foreign or wrong-schema documents are counted and skipped, so one
  bad line can never poison the history behind it.

The serialization is canonical (sorted keys, compact separators,
``default=str``) so two processes appending the same logical record
produce the same bytes — tests pin this format.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple


def dumps_line(record: Dict) -> str:
    """Canonical one-line serialization of ``record`` (newline
    included).  This is the byte format of every JSONL store."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      default=str) + "\n"


def append_jsonl(path: str, record: Dict) -> None:
    """Atomically append ``record`` as one line to ``path``.

    Creates the parent directory on demand.  The single-``os.write``
    on an ``O_APPEND`` descriptor is the whole concurrency story: no
    locks, no partial interleavings.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    line = dumps_line(record)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def read_jsonl(path: str,
               schema: Optional[str] = None) -> Tuple[List[Dict], int]:
    """All parsable records in append order, plus the count of skipped
    lines (torn, corrupt, non-dict, or — when ``schema`` is given —
    wrong-schema).  A missing file reads as empty, not as an error."""
    out: List[Dict] = []
    skipped = 0
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1
                    continue
                if not isinstance(doc, dict) or \
                        (schema is not None
                         and doc.get("schema") != schema):
                    skipped += 1
                    continue
                out.append(doc)
    except OSError:
        pass
    return out, skipped

"""Cycle model of a commercial-HLS-style accelerator.

This is the reproduction's stand-in for LegUp / Intel HLS (which the
paper uses for Figure 9).  It encodes exactly the execution-model
differences the paper attributes the results to:

* **Static schedule, FSM-driven.**  Innermost loops are modulo-
  scheduled (II from memory-port pressure and loop-carried
  recurrences); everything else runs as a sequential state machine.
* **Serialized nested loops.**  An outer loop iteration fully drains
  its inner loops ("HLS serializes the nested loop executions").
* **Streaming buffers.**  Affine unit-stride accesses in pipelined
  loops stream through inferred FIFOs and stop pressuring the memory
  ports (why HLS wins ~10% on FFT/DENSE in Figure 9).
* **Lower clock.**  The centralized controller costs ~20% fmax versus
  uIR's decentralized dataflow; callers combine cycles with
  ``relative_clock``.

Cycle accounting replays the reference interpreter's dynamic block
trace against statically computed per-block/per-loop costs, so data-
dependent trip counts (SPMV) are handled exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core import oplib
from ..frontend import cfg as cfg_mod
from ..frontend.interp import Interpreter, Memory
from ..frontend.ir import (
    BasicBlock,
    Branch,
    Call,
    CondBranch,
    Constant,
    Detach,
    GlobalArray,
    Instruction,
    Module,
    Phi,
)

#: Paper observation: uIR attains ~20% higher clock than HLS.
HLS_RELATIVE_CLOCK = 1.0 / 1.2

_CALL_HANDSHAKE = 2
_FSM_TRANSITION = 1


def _op_latency(instr: Instruction) -> int:
    op = instr.opcode
    if op in ("load", "tload"):
        return 2  # BRAM read
    if op in ("store", "tstore"):
        return 1
    if op in ("tmul", "tadd", "tsub", "trelu"):
        return oplib.op_info(op, instr.type).latency
    try:
        return oplib.op_info(op, instr.type).latency
    except KeyError:
        return 1


@dataclass
class LoopInfo:
    loop: cfg_mod.Loop
    pipelined: bool
    ii: int = 1
    depth: int = 1
    streaming_ops: int = 0
    random_ops: int = 0


@dataclass
class HlsReport:
    cycles: int
    relative_clock: float = HLS_RELATIVE_CLOCK
    loop_info: Dict[str, LoopInfo] = field(default_factory=dict)

    def time_at(self, uir_fmax_mhz: float) -> float:
        """Microseconds, given the uIR design's clock as reference."""
        return self.cycles / (uir_fmax_mhz * self.relative_clock)


class _FunctionAnalysis:
    """Static per-function scheduling facts."""

    def __init__(self, function, memory_ports: int, streaming: bool):
        self.loops = cfg_mod.find_loops(function)
        self.innermost: Dict[BasicBlock, Optional[cfg_mod.Loop]] = {}
        for block in function.blocks:
            self.innermost[block] = cfg_mod.loop_of_block(self.loops,
                                                          block)
        self.loop_info: Dict[cfg_mod.Loop, LoopInfo] = {}
        for loop in self.loops:
            self.loop_info[loop] = self._analyze_loop(
                loop, memory_ports, streaming)
        self.block_cost: Dict[BasicBlock, int] = {
            b: self._schedule_block(b, memory_ports)
            for b in function.blocks}

    # -- loop analysis -----------------------------------------------------
    def _analyze_loop(self, loop: cfg_mod.Loop, ports: int,
                      streaming: bool) -> LoopInfo:
        has_inner = any(other is not loop and
                        other.header in loop.blocks
                        for other in self.loops)
        has_call = any(isinstance(i, (Call, Detach))
                       for b in loop.blocks for i in b.instructions)
        if has_inner or has_call:
            return LoopInfo(loop, pipelined=False)
        induction = cfg_mod.recognize_induction(loop)
        streaming_ops = 0
        random_ops = 0
        for block in loop.blocks:
            for instr in block.instructions:
                if instr.opcode in ("load", "store", "tload", "tstore"):
                    ptr = instr.operands[0] if instr.opcode in (
                        "load", "tload") else instr.operands[1]
                    if streaming and induction is not None and \
                            self._unit_stride(ptr, induction, loop):
                        streaming_ops += 1
                    else:
                        random_ops += 1
        ii_mem = max(1, -(-random_ops // ports))
        ii_rec = self._recurrence_ii(loop, induction)
        ii = max(1, ii_mem, ii_rec)
        depth = max(self._schedule_block(b, ports)
                    for b in loop.blocks)
        return LoopInfo(loop, pipelined=True, ii=ii, depth=depth,
                        streaming_ops=streaming_ops,
                        random_ops=random_ops)

    def _unit_stride(self, ptr, induction, loop) -> bool:
        coeff = _affine_coeff(ptr, induction.phi, loop)
        return coeff is not None and abs(coeff) <= 1

    def _recurrence_ii(self, loop, induction) -> int:
        worst = 1
        for phi in loop.header.phis:
            if induction is not None and phi is induction.phi:
                continue
            update = None
            for b, v in phi.incomings:
                if b in loop.blocks:
                    update = v
            if update is None:
                continue
            length = _chain_latency(update, phi, loop, set())
            if length is not None:
                worst = max(worst, length)
        return worst

    # -- straight-line scheduling ------------------------------------------
    def _schedule_block(self, block: BasicBlock, ports: int) -> int:
        ready: Dict[object, int] = {}
        mem_slots: Dict[int, int] = {}
        finish = 0
        for instr in block.instructions:
            if isinstance(instr, (Phi, Branch, CondBranch)):
                continue
            start = 0
            for op in instr.operands:
                if isinstance(op, Instruction) and op in ready:
                    start = max(start, ready[op])
            if instr.opcode in ("load", "store", "tload", "tstore"):
                while mem_slots.get(start, 0) >= ports:
                    start += 1
                mem_slots[start] = mem_slots.get(start, 0) + 1
            ready[instr] = start + _op_latency(instr)
            finish = max(finish, ready[instr])
        return max(finish, 1) + _FSM_TRANSITION


def _affine_coeff(value, phi, loop) -> Optional[int]:
    """Coefficient of ``phi`` in ``value`` (None when non-affine)."""
    if value is phi:
        return 1
    if isinstance(value, (Constant, GlobalArray)):
        return 0
    if isinstance(value, Instruction):
        if value.block not in loop.blocks:
            return 0  # loop-invariant
        op = value.opcode
        if op in ("add", "sub"):
            a = _affine_coeff(value.operands[0], phi, loop)
            b = _affine_coeff(value.operands[1], phi, loop)
            if a is None or b is None:
                return None
            return a + b if op == "add" else a - b
        if op == "mul":
            a, b = value.operands
            ca = _affine_coeff(a, phi, loop)
            cb = _affine_coeff(b, phi, loop)
            if ca == 0 and isinstance(a, Constant) and cb is not None:
                return cb * int(a.value)
            if cb == 0 and isinstance(b, Constant) and ca is not None:
                return ca * int(b.value)
            if ca == 0 and cb == 0:
                return 0
            return None
        if op == "gep":
            base = _affine_coeff(value.operands[0], phi, loop)
            idx = _affine_coeff(value.operands[1], phi, loop)
            if base is None or idx is None or base != 0:
                return None
            ptr_t = value.operands[0].type
            return idx * ptr_t.pointee.words
        if op == "phi":
            return None
        # Any other in-loop computation (loads, divisions, ...) is
        # not an affine function of the induction variable.
        return None
    # Arguments and anything defined outside the loop are invariant.
    return 0


def _chain_latency(value, phi, loop, seen) -> Optional[int]:
    """Latency of the def chain from ``phi`` to ``value`` in one
    iteration (the loop-carried recurrence length)."""
    if value is phi:
        return 0
    if not isinstance(value, Instruction) or value.block not in loop.blocks:
        return None
    if id(value) in seen:
        return None
    seen.add(id(value))
    best = None
    for op in value.operands:
        sub = _chain_latency(op, phi, loop, seen)
        if sub is not None:
            cand = sub + _op_latency(value)
            best = cand if best is None else max(best, cand)
    return best


class HlsModel:
    """Estimates the HLS accelerator's cycle count for one execution."""

    def __init__(self, module: Module, memory_ports: int = 2,
                 streaming: bool = True):
        self.module = module
        self.memory_ports = memory_ports
        self.streaming = streaming
        self._analyses: Dict[str, _FunctionAnalysis] = {}
        for function in module.functions.values():
            self._analyses[function.name] = _FunctionAnalysis(
                function, memory_ports, streaming)

    def run(self, memory: Optional[Memory] = None, *args) -> HlsReport:
        mem = memory if memory is not None else Memory(self.module)
        state = {"cycles": 0, "active_loop": None}
        loop_info_out: Dict[str, LoopInfo] = {}

        def hook(block: BasicBlock) -> None:
            analysis = self._analyses[block.function.name]
            loop = analysis.innermost[block]
            info = analysis.loop_info.get(loop) if loop else None
            if info is not None and info.pipelined:
                key = f"{block.function.name}:{loop.header.name}"
                loop_info_out[key] = info
                if block is loop.header:
                    if state["active_loop"] is not loop:
                        # Pipeline fill on loop entry.
                        state["cycles"] += info.depth
                        state["active_loop"] = loop
                    state["cycles"] += info.ii
                # Body blocks of a pipelined loop ride the II charge.
                return
            state["active_loop"] = None
            state["cycles"] += analysis.block_cost[block]
            for instr in block.instructions:
                if isinstance(instr, Call):
                    state["cycles"] += _CALL_HANDSHAKE

        interp = Interpreter(self.module, mem, block_hook=hook)
        interp.run(*args)
        return HlsReport(cycles=state["cycles"],
                         loop_info=loop_info_out)


def estimate_hls(module: Module, memory: Optional[Memory],
                 *args, **kwargs) -> HlsReport:
    return HlsModel(module, **kwargs).run(memory, *args)

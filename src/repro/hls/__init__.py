"""Statically-scheduled HLS baseline model (paper section 5.2)."""

from .model import HlsModel, HlsReport, estimate_hls  # noqa: F401

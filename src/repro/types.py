"""Type system shared by the software IR and the uIR hardware graph.

The paper's polymorphic operations ("the designer only has to specify
the data types of individual nodes, and during RTL generation uIR
implicitly infers and sets up the physical wire widths and flit sizes")
rest on a small, closed type universe:

* scalar integers of a given bit width (``IntType``),
* IEEE-ish floats (``FloatType``; we model binary32/binary64),
* booleans (``BoolType``, 1 bit),
* pointers into a (numbered) address space (``PointerType``),
* short vectors (``VectorType``),
* small 2-D tensors (``TensorType``), the paper's ``Tensor2D``.

All types are immutable value objects; equality and hashing are
structural so they can key dictionaries in analyses and the RTL cost
library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import TypeMismatchError

WORD_BITS = 32
"""Memory word size used by scratchpads, caches, and the databox."""


@dataclass(frozen=True)
class Type:
    """Base class for all types; concrete subclasses define ``bits``."""

    @property
    def bits(self) -> int:
        raise NotImplementedError

    @property
    def words(self) -> int:
        """Number of 32-bit memory words this type occupies."""
        return max(1, (self.bits + WORD_BITS - 1) // WORD_BITS)

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_tensor(self) -> bool:
        return False

    @property
    def is_pointer(self) -> bool:
        return False


@dataclass(frozen=True)
class VoidType(Type):
    """The type of instructions producing no value (stores, branches)."""

    @property
    def bits(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """A fixed-width two's-complement integer."""

    width: int = WORD_BITS
    signed: bool = True

    @property
    def bits(self) -> int:
        return self.width

    def __str__(self) -> str:
        prefix = "i" if self.signed else "u"
        return f"{prefix}{self.width}"

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to this type's range (two's complement)."""
        mask = (1 << self.width) - 1
        value &= mask
        if self.signed and value >= (1 << (self.width - 1)):
            value -= 1 << self.width
        return value

    def wrapper(self):
        """Specialized wrap closure with mask/sign bound as locals.

        Bit-identical to :meth:`wrap`; used by the compiled simulation
        kernel, which resolves the type once per node instead of once
        per fire.
        """
        mask = (1 << self.width) - 1
        if not self.signed:
            return lambda value: value & mask
        sign = 1 << (self.width - 1)
        span = 1 << self.width

        def wrap(value: int) -> int:
            value &= mask
            if value >= sign:
                value -= span
            return value

        return wrap


@dataclass(frozen=True)
class FloatType(Type):
    """A binary floating point number (32- or 64-bit)."""

    width: int = 32

    @property
    def bits(self) -> int:
        return self.width

    @property
    def is_float(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"f{self.width}"


@dataclass(frozen=True)
class BoolType(Type):
    """A single-bit predicate."""

    @property
    def bits(self) -> int:
        return 1

    def __str__(self) -> str:
        return "i1"


@dataclass(frozen=True)
class PointerType(Type):
    """A pointer into address space ``space`` (0 = global/DRAM)."""

    pointee: Type = field(default_factory=lambda: IntType())
    space: int = 0

    @property
    def bits(self) -> int:
        return 32

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        suffix = f"@{self.space}" if self.space else ""
        return f"{self.pointee}*{suffix}"


@dataclass(frozen=True)
class VectorType(Type):
    """A short SIMD vector of ``lanes`` elements."""

    elem: Type = field(default_factory=lambda: IntType())
    lanes: int = 4

    @property
    def bits(self) -> int:
        return self.elem.bits * self.lanes

    def __str__(self) -> str:
        return f"<{self.lanes} x {self.elem}>"


@dataclass(frozen=True)
class TensorType(Type):
    """The paper's ``Tensor2D``: a rows x cols tile of scalars.

    A Tensor2D value moves through the dataflow as a single wide token;
    the databox widens/narrows it to word-granularity memory accesses.
    """

    elem: Type = field(default_factory=lambda: FloatType(32))
    rows: int = 2
    cols: int = 2

    @property
    def bits(self) -> int:
        return self.elem.bits * self.rows * self.cols

    @property
    def is_tensor(self) -> bool:
        return True

    @property
    def elements(self) -> int:
        return self.rows * self.cols

    def __str__(self) -> str:
        return f"tensor<{self.rows}x{self.cols}x{self.elem}>"


# Canonical singletons used throughout the code base.
VOID = VoidType()
BOOL = BoolType()
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
U32 = IntType(32, signed=False)
F32 = FloatType(32)
F64 = FloatType(64)


def pointer(pointee: Type, space: int = 0) -> PointerType:
    """Convenience constructor for :class:`PointerType`."""
    return PointerType(pointee, space)


def tensor2d(elem: Type = F32, rows: int = 2, cols: int = 2) -> TensorType:
    """Convenience constructor for :class:`TensorType`."""
    return TensorType(elem, rows, cols)


def common_type(a: Type, b: Type) -> Type:
    """Return the common arithmetic type of two operands.

    Raises :class:`TypeMismatchError` when the operands cannot appear in
    the same arithmetic operation (e.g. tensor + scalar).
    """
    if a == b:
        return a
    if isinstance(a, PointerType) and isinstance(b, IntType):
        return a
    if isinstance(b, PointerType) and isinstance(a, IntType):
        return b
    if isinstance(a, IntType) and isinstance(b, IntType):
        return a if a.width >= b.width else b
    if isinstance(a, FloatType) and isinstance(b, FloatType):
        return a if a.width >= b.width else b
    raise TypeMismatchError(f"no common type for {a} and {b}")


def parse_type(text: str) -> Type:
    """Parse a type from its canonical string form (used by MiniC).

    Supports ``i1/i8/i16/i32/i64``, ``u32``, ``f32/f64``,
    ``tensor<RxCxELEM>``, and pointers written as ``ELEM*``.
    """
    text = text.strip()
    if text.endswith("*"):
        return PointerType(parse_type(text[:-1]))
    if text.startswith("tensor<") and text.endswith(">"):
        inner = text[len("tensor<"):-1]
        rows_s, cols_s, elem_s = inner.split("x", 2)
        return TensorType(parse_type(elem_s), int(rows_s), int(cols_s))
    simple = {
        "void": VOID, "i1": BOOL, "bool": BOOL,
        "i8": I8, "i16": I16, "i32": I32, "i64": I64, "u32": U32,
        "f32": F32, "f64": F64, "int": I32, "float": F32,
    }
    if text in simple:
        return simple[text]
    raise TypeMismatchError(f"unknown type {text!r}")

"""Structural Verilog skeleton emitter.

Emits the module hierarchy the uIR graph lowers to: one module per
task block with ready/valid ports, wire declarations per connection,
and library-cell instances per node (the cell implementations live in
the uIR hardware library, exactly as in the paper's flow where Chisel
elaborates against a component library)."""

from __future__ import annotations

from typing import List

from ..core.circuit import AcceleratorCircuit, TaskBlock
from ..core.structures import PerfCounterBank

_CELL = {
    "compute": "uir_compute",
    "tensor": "uir_tensor_fu",
    "fused": "uir_fused",
    "select": "uir_select",
    "phi": "uir_phi",
    "const": "uir_const",
    "livein": "uir_livein_buf",
    "liveout": "uir_liveout_buf",
    "loopctl": "uir_loop_control",
    "load": "uir_load_databox",
    "store": "uir_store_databox",
    "call": "uir_task_call",
    "spawn": "uir_task_spawn",
    "sync": "uir_task_sync",
}


def _safe(name: str) -> str:
    return name.replace(".", "_")


def emit_task_module(task: TaskBlock) -> str:
    lines: List[str] = []
    lines.append(f"module task_{_safe(task.name)} (")
    lines.append("  input  wire clk,")
    lines.append("  input  wire rst,")
    ports = []
    for i, t in enumerate(task.live_in_types):
        ports.append(f"  input  wire [{max(0, t.bits - 1)}:0] "
                     f"livein{i}_data")
        ports.append(f"  input  wire livein{i}_valid")
        ports.append(f"  output wire livein{i}_ready")
    for i, t in enumerate(task.live_out_types):
        ports.append(f"  output wire [{max(0, t.bits - 1)}:0] "
                     f"liveout{i}_data")
        ports.append(f"  output wire liveout{i}_valid")
        ports.append(f"  input  wire liveout{i}_ready")
    lines.append(",\n".join(ports) if ports else "  // no data ports")
    lines.append(");")
    lines.append("")
    for conn in task.dataflow.connections:
        width = max(1, conn.width_bits)
        wname = (f"w_{_safe(conn.src.node.name)}_{conn.src.name}"
                 f"__{_safe(conn.dst.node.name)}_{conn.dst.name}")
        lines.append(f"  wire [{width - 1}:0] {wname}_data;")
        lines.append(f"  wire {wname}_valid, {wname}_ready;")
    lines.append("")
    for node in task.dataflow.nodes:
        cell = _CELL.get(node.kind, "uir_node")
        params = []
        if node.kind in ("compute", "tensor"):
            params.append(f'.OP("{node.op}")')
        if node.kind == "const":
            params.append(f".VALUE({node.value!r})".replace("'", ""))
        plist = (" #(" + ", ".join(params) + ")") if params else ""
        lines.append(f"  {cell}{plist} u_{_safe(node.name)} "
                     f"(.clk(clk), .rst(rst) /* ports elided */);")
    lines.append("endmodule")
    return "\n".join(lines)


def emit_verilog(circuit: AcceleratorCircuit) -> str:
    parts = [f"// Structural Verilog for uIR circuit '{circuit.name}'",
             "// Cell implementations come from the uIR hardware "
             "library.", ""]
    for task in circuit.tasks.values():
        parts.append(emit_task_module(task))
        parts.append("")
    for structure in circuit.structures:
        if isinstance(structure, PerfCounterBank):
            parts.append(emit_pmu_bank(structure))
            parts.append("")
    parts.append(f"module accelerator_top (input wire clk, "
                 f"input wire rst);")
    for task in circuit.tasks.values():
        for tile in range(task.num_tiles):
            parts.append(f"  task_{_safe(task.name)} "
                         f"u_{_safe(task.name)}_t{tile} "
                         f"(.clk(clk), .rst(rst));")
    for structure in circuit.structures:
        if isinstance(structure, PerfCounterBank):
            parts.append(f"  pmu_{_safe(structure.name)} "
                         f"u_{_safe(structure.name)} "
                         f"(.clk(clk), .rst(rst) "
                         f"/* event taps + axi-lite readout */);")
    parts.append("endmodule")
    return "\n".join(parts)


def emit_pmu_bank(bank: PerfCounterBank) -> str:
    """One saturating 32-bit counter register per monitored event.

    Counters tap valid/grant strobes; they never drive a ready signal,
    which is the structural form of the behavior-neutrality invariant
    the perf_counters pass promises.
    """
    n = len(bank.counters)
    lines: List[str] = []
    lines.append(f"module pmu_{_safe(bank.name)} (")
    lines.append("  input  wire clk,")
    lines.append("  input  wire rst,")
    lines.append(f"  input  wire [{max(0, n - 1)}:0] event_strobe,")
    lines.append(f"  output wire [{32 * max(1, n) - 1}:0] counters")
    lines.append(");")
    for i, spec in enumerate(bank.counters):
        reg = f"cnt_{i}"
        lines.append(f"  // {spec.name} ({spec.kind} -> {spec.target})")
        lines.append(f"  reg [31:0] {reg};")
        lines.append(f"  always @(posedge clk) begin")
        lines.append(f"    if (rst) {reg} <= 32'd0;")
        lines.append(f"    else if (event_strobe[{i}] && "
                     f"~&{reg}) {reg} <= {reg} + 32'd1;")
        lines.append(f"  end")
        lines.append(f"  assign counters[{32 * i + 31}:{32 * i}] "
                     f"= {reg};")
    lines.append("endmodule")
    return "\n".join(lines)

"""FIRRTL-like low-level circuit graph and uIR -> FIRRTL lowering.

The paper's section 7 quantifies uIR's productivity against a
hypothetical flow where transformations are written at FIRRTL level:
it counts how many nodes/edges of each representation a transformation
touches, and the overall FIRRTL/uIR graph-size ratio (8.4-12.4x).

To measure rather than estimate this, we lower uIR to an explicit
circuit graph of FIRRTL-ish primitives — every dataflow node expands
into its operator primitive(s) plus the ready/valid handshake logic
(valid register, data register, ready gate, fire gate), junctions
expand into arbiter trees, structures into memory macros with per-bank
decoders, and task edges into issue queues.  Names are deterministic,
so two lowered circuits can be diffed structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from ..core.circuit import AcceleratorCircuit, TaskBlock
from ..core.structures import Cache, Scratchpad


@dataclass
class FirrtlCircuit:
    """A flat structural graph of primitive RTL elements."""

    name: str
    nodes: Set[str] = field(default_factory=set)
    node_kinds: Dict[str, str] = field(default_factory=dict)
    edges: Set[Tuple[str, str, str]] = field(default_factory=set)

    def add_node(self, name: str, kind: str) -> str:
        self.nodes.add(name)
        self.node_kinds[name] = kind
        return name

    def add_edge(self, src: str, dst: str, tag: str = "w") -> None:
        self.edges.add((src, dst, tag))

    def stats(self) -> Dict[str, int]:
        return {"nodes": len(self.nodes), "edges": len(self.edges)}

    def __repr__(self) -> str:
        return (f"FirrtlCircuit({self.name}, {len(self.nodes)} nodes, "
                f"{len(self.edges)} edges)")


#: Primitive expansion per uIR node kind: list of (suffix, prim_kind).
_HANDSHAKE = [("valid_reg", "reg"), ("data_reg", "reg"),
              ("ready_gate", "and"), ("fire_gate", "and"),
              ("en_gate", "and"), ("rst_mux", "mux")]

_EXPANSION: Dict[str, List[Tuple[str, str]]] = {
    "compute": [("op", "primop")] + _HANDSHAKE,
    "tensor": [(f"lane{i}", "primop") for i in range(4)]
    + [("reduce", "primop")] + _HANDSHAKE,
    "select": [("mux", "mux")] + _HANDSHAKE,
    "phi": [("mux", "mux"), ("state_reg", "reg")] + _HANDSHAKE,
    "const": [("lit", "literal")],
    "livein": [("buf_reg", "reg"), ("valid_reg", "reg")],
    "liveout": [("buf_reg", "reg"), ("valid_reg", "reg")],
    "loopctl": [("idx_reg", "reg"), ("inc", "primop"),
                ("cmp", "primop"), ("bound_reg", "reg"),
                ("step_reg", "reg"), ("fsm_reg", "reg"),
                ("issue_gate", "and")] + _HANDSHAKE,
    "load": [("addr_gen", "primop"), ("pend_reg", "reg"),
             ("coalesce", "mux")] + _HANDSHAKE,
    "store": [("addr_gen", "primop"), ("pend_reg", "reg"),
              ("wdata_reg", "reg")] + _HANDSHAKE,
    "call": [("req_queue", "queue"), ("resp_reg", "reg"),
             ("tag_reg", "reg")] + _HANDSHAKE,
    "spawn": [("req_queue", "queue"), ("tag_reg", "reg")] + _HANDSHAKE,
    "sync": [("count_reg", "reg"), ("cmp", "primop")] + _HANDSHAKE,
    "fused": _HANDSHAKE,  # + one primop per fused expression, below
}

#: Dense internal wiring per expansion (edges among the node's prims).
_INTERNAL_EDGE_FACTOR = 1.4


def _lower_node(fc: FirrtlCircuit, prefix: str, node) -> List[str]:
    base = f"{prefix}.{node.name}"
    prims = list(_EXPANSION.get(node.kind, _HANDSHAKE))
    if node.kind == "fused":
        prims = [(f"op{i}", "primop")
                 for i in range(len(node.exprs))] + prims
    names = [fc.add_node(f"{base}.{suffix}", kind)
             for suffix, kind in prims]
    # Internal wiring: chain prims + handshake cross links.
    for a, b in zip(names, names[1:]):
        fc.add_edge(a, b, "int")
    extra = int(len(names) * (_INTERNAL_EDGE_FACTOR - 1.0))
    for i in range(extra):
        fc.add_edge(names[i % len(names)],
                    names[(i * 2 + 1) % len(names)], f"x{i}")
    return names


def _lower_connection(fc: FirrtlCircuit, prefix: str, conn,
                      anchor: Dict[Tuple[str, str], str]) -> None:
    src = anchor[(prefix, conn.src.node.name)]
    dst = anchor[(prefix, conn.dst.node.name)]
    tag = f"{conn.src.name}->{conn.dst.name}"
    fc.add_edge(src, dst, f"data:{tag}")
    fc.add_edge(src, dst, f"valid:{tag}")
    fc.add_edge(dst, src, f"ready:{tag}")
    if conn.buffered and not conn.latched:
        # The baseline's per-edge handshake buffer is its own pair of
        # registers at FIRRTL level (removed by auto-pipelining).
        hs = fc.add_node(
            f"{prefix}.hs.{conn.src.node.name}.{tag}", "reg")
        hs_v = fc.add_node(
            f"{prefix}.hsv.{conn.src.node.name}.{tag}", "reg")
        fc.add_edge(src, hs, "hs")
        fc.add_edge(hs, dst, "hs")
        fc.add_edge(hs_v, hs, "int")


def lower_to_firrtl(circuit: AcceleratorCircuit) -> FirrtlCircuit:
    """Expand a uIR circuit into the FIRRTL-level structural graph."""
    fc = FirrtlCircuit(circuit.name)
    anchor: Dict[Tuple[str, str], str] = {}
    for task in circuit.tasks.values():
        for node in task.dataflow.nodes:
            names = _lower_node(fc, task.name, node)
            anchor[(task.name, node.name)] = names[0]
        for conn in task.dataflow.connections:
            _lower_connection(fc, task.name, conn, anchor)
        # Junctions: arbiter tree (base + per-client grant/mux legs).
        for junction in task.junctions:
            jbase = f"{task.name}.{junction.name}"
            arb = fc.add_node(f"{jbase}.arbiter", "arbiter")
            fc.add_node(f"{jbase}.rr_reg", "reg")
            fc.add_edge(f"{jbase}.rr_reg", arb, "int")
            for i, client in enumerate(junction.clients):
                grant = fc.add_node(f"{jbase}.grant{i}", "and")
                leg = fc.add_node(f"{jbase}.muxleg{i}", "mux")
                fc.add_edge(grant, arb, "int")
                fc.add_edge(leg, arb, "int")
                fc.add_edge(anchor[(task.name, client.name)], leg,
                            "req")
                fc.add_edge(arb, anchor[(task.name, client.name)],
                            "resp")
        # Tile replication: each extra tile is a full copy of the
        # block plus a dispatch crossbar.
        if task.num_tiles > 1:
            for tile in range(1, task.num_tiles):
                prefix = f"{task.name}.tile{tile}"
                tile_anchor: Dict[Tuple[str, str], str] = {}
                for node in task.dataflow.nodes:
                    names = _lower_node(fc, prefix, node)
                    tile_anchor[(prefix, node.name)] = names[0]
                for conn in task.dataflow.connections:
                    _lower_connection(fc, prefix, conn, tile_anchor)
                xbar = fc.add_node(f"{task.name}.xbar{tile}",
                                   "arbiter")
                first = task.dataflow.nodes[0]
                fc.add_edge(xbar, tile_anchor[(prefix, first.name)],
                            "dispatch")

    # Structures: memory macro + per-bank decode/port logic.
    for structure in circuit.structures:
        if not isinstance(structure, (Scratchpad, Cache)):
            continue
        sbase = structure.name
        mem = fc.add_node(f"{sbase}.mem", "mem")
        fc.add_node(f"{sbase}.ctrl_reg", "reg")
        fc.add_edge(f"{sbase}.ctrl_reg", mem, "int")
        for b in range(structure.banks):
            dec = fc.add_node(f"{sbase}.bank{b}.decode", "primop")
            port = fc.add_node(f"{sbase}.bank{b}.port", "mux")
            fc.add_edge(dec, mem, "int")
            fc.add_edge(port, mem, "int")
        if isinstance(structure, Cache):
            fc.add_node(f"{sbase}.tags", "mem")
            fc.add_node(f"{sbase}.mshr", "queue")
            fc.add_edge(f"{sbase}.tags", mem, "int")
            fc.add_edge(f"{sbase}.mshr", mem, "int")

    # Task edges: issue queues (one reg per entry + control).
    for edge in circuit.task_edges:
        ebase = f"queue.{edge.parent}.{edge.child}"
        head = fc.add_node(f"{ebase}.ctrl", "queue")
        for i in range(edge.queue_depth):
            slot = fc.add_node(f"{ebase}.slot{i}", "reg")
            fc.add_edge(slot, head, "int")
    return fc


def diff_circuits(before: FirrtlCircuit,
                  after: FirrtlCircuit) -> Tuple[int, int]:
    """(delta_nodes, delta_edges): structural elements touched by a
    transformation = added + removed elements."""
    dnodes = len(before.nodes ^ after.nodes)
    dedges = len(before.edges ^ after.edges)
    return dnodes, dedges

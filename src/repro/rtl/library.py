"""Hardware component cost database.

This is the "uIR library of microarchitecture components" the RTL
generator instantiates.  Costs are per 32-bit operator instance,
calibrated to the ballpark of Arria-10 synthesis results (ALMs,
dedicated registers, DSP blocks) and a 28 nm standard-cell flow
(area in um^2, dynamic power in mW per GHz of toggle rate).

The handshake wrapper (ready/valid + data register) that every
baseline dataflow edge carries is costed separately per connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ComponentCost:
    alms: int          # FPGA adaptive logic modules
    regs: int          # FPGA dedicated registers
    dsps: int          # FPGA DSP blocks
    area_um2: float    # ASIC 28nm cell area
    power_mw_ghz: float  # ASIC dynamic power at 1 GHz


#: Per ``area_class`` (see repro.core.oplib.OpInfo.area_class).
COMPONENT_COSTS: Dict[str, ComponentCost] = {
    "int_alu": ComponentCost(18, 34, 0, 210.0, 0.065),
    "int_logic": ComponentCost(10, 33, 0, 120.0, 0.035),
    "int_shift": ComponentCost(16, 33, 0, 180.0, 0.045),
    "int_cmp": ComponentCost(12, 12, 0, 140.0, 0.035),
    "int_mul": ComponentCost(14, 70, 1, 900.0, 0.30),
    "int_div": ComponentCost(160, 230, 0, 2600.0, 0.70),
    "fp_add": ComponentCost(110, 220, 0, 1900.0, 0.55),
    "fp_mul": ComponentCost(60, 190, 1, 1700.0, 0.60),
    "fp_div": ComponentCost(330, 610, 0, 6800.0, 1.60),
    "fp_elem": ComponentCost(420, 760, 2, 8200.0, 1.90),
    "fp_cvt": ComponentCost(46, 90, 0, 620.0, 0.18),
    "mux": ComponentCost(9, 33, 0, 110.0, 0.030),
    "const": ComponentCost(1, 0, 0, 8.0, 0.001),
    "buffer": ComponentCost(4, 33, 0, 90.0, 0.020),
    "loop_control": ComponentCost(40, 70, 0, 560.0, 0.14),
    "mem_port": ComponentCost(30, 64, 0, 480.0, 0.12),
    "task_iface": ComponentCost(55, 96, 0, 700.0, 0.18),
    # Tensor2D units (Figure 14): 2x2 reduction-tree multiplier packs
    # 8 fp-mults + adder tree; elementwise units pack 4 lanes.
    "tensor_mul": ComponentCost(380, 900, 12, 12500.0, 3.60),
    "tensor_add": ComponentCost(330, 700, 0, 6400.0, 1.80),
    "tensor_relu": ComponentCost(40, 140, 0, 420.0, 0.10),
}

#: Handshake stage per buffered connection (valid/ready + data reg).
HANDSHAKE_COST_PER_BIT = ComponentCost(0, 1, 0, 2.4, 0.0008)
HANDSHAKE_BASE = ComponentCost(3, 2, 0, 28.0, 0.006)

#: Junction arbitration per client.
JUNCTION_PER_CLIENT = ComponentCost(14, 20, 0, 240.0, 0.06)

#: Task queue / crossbar per tile beyond the first.
TILE_CROSSBAR = ComponentCost(70, 110, 0, 950.0, 0.22)
TASK_QUEUE_PER_ENTRY = ComponentCost(6, 40, 0, 130.0, 0.03)

#: On-chip RAM control overhead per structure + per bank (the data
#: arrays map to M20K/SRAM macros, which Table 2 doesn't count in ALMs).
RAM_CONTROL = ComponentCost(40, 36, 0, 600.0, 0.15)
RAM_PER_BANK = ComponentCost(24, 24, 0, 360.0, 0.09)
RAM_PER_KWORD_POWER_MW = 0.8   # ASIC SRAM leakage+dynamic per kword

#: Performance-counter bank: readout mux + control per bank, one
#: 32-bit saturating counter (register + increment logic) per event.
PMU_BASE = ComponentCost(12, 10, 0, 180.0, 0.04)
PMU_PER_COUNTER = ComponentCost(9, 34, 0, 150.0, 0.035)


def component_cost(area_class: str) -> ComponentCost:
    try:
        return COMPONENT_COSTS[area_class]
    except KeyError:
        raise KeyError(f"no cost entry for component class "
                       f"{area_class!r}")


def scale_cost(cost: ComponentCost, factor: float) -> ComponentCost:
    return ComponentCost(
        alms=int(round(cost.alms * factor)),
        regs=int(round(cost.regs * factor)),
        dsps=int(round(cost.dsps * factor)),
        area_um2=cost.area_um2 * factor,
        power_mw_ghz=cost.power_mw_ghz * factor)


def add_costs(a: ComponentCost, b: ComponentCost) -> ComponentCost:
    return ComponentCost(a.alms + b.alms, a.regs + b.regs,
                         a.dsps + b.dsps, a.area_um2 + b.area_um2,
                         a.power_mw_ghz + b.power_mw_ghz)


ZERO_COST = ComponentCost(0, 0, 0, 0.0, 0.0)

"""Chisel-flavoured structural emitter (paper Figures 4 and 6).

Generates the modular RTL text a uIR graph lowers to: one
``TaskModule`` class per task block (dataflow nodes, dependency
connections, junctions) and one top-level ``Accelerator`` class wiring
task interfaces (``<||>``) and memory structures (``<==>``).  Computer
architects never edit this output — it exists so the lowering is
inspectable and so tests can pin its structure.
"""

from __future__ import annotations

from typing import List

from ..core.circuit import AcceleratorCircuit, TaskBlock
from ..core.structures import Cache, PerfCounterBank, Scratchpad


def _camel(name: str) -> str:
    return "".join(part.capitalize() or "_"
                   for part in name.replace(".", "_").split("_"))


def _node_decl(node) -> str:
    kind = node.kind
    if kind == "compute":
        return (f'val {node.name} = new ComputeNode(opCode = '
                f'"{node.op}")({node.out.type})')
    if kind == "tensor":
        return (f'val {node.name} = new TensorComputeNode(opCode = '
                f'"{node.op}")({node.out.type})')
    if kind == "fused":
        ops = "+".join(op for op, _r, _t, _s in node.exprs)
        return (f'val {node.name} = new FusedNode(chain = "{ops}")'
                f'({node.out.type})')
    if kind == "select":
        return f'val {node.name} = new SelectNode()({node.out.type})'
    if kind == "phi":
        return f'val {node.name} = new PhiNode()({node.out.type})'
    if kind == "const":
        return (f'val {node.name} = new ConstNode(value = '
                f'{node.value})({node.out.type})')
    if kind == "livein":
        return (f'val {node.name} = new LiveInBuffer(index = '
                f'{node.index})({node.out.type})')
    if kind == "liveout":
        return (f'val {node.name} = new LiveOut(index = '
                f'{node.index})({node.inp.type})')
    if kind == "loopctl":
        mode = "Conditional" if node.conditional else "Counted"
        return (f'val {node.name} = new LoopControl(mode = {mode}, '
                f'stages = {node.pipeline_stages})')
    if kind == "load":
        return f'val {node.name} = new Load()({node.out.type})'
    if kind == "store":
        return f'val {node.name} = new Store()({node.value_type})'
    if kind == "call":
        return f'val {node.name} = new TaskCall("{node.callee}")'
    if kind == "spawn":
        return f'val {node.name} = new TaskSpawn("{node.callee}")'
    if kind == "sync":
        return f'val {node.name} = new TaskSync()'
    return f'val {node.name} = new Node()  // {kind}'


def emit_task(task: TaskBlock) -> str:
    lines: List[str] = []
    cls = _camel(task.name)
    lines.append(f"class {cls} extends TaskModule(p) {{")
    lines.append(f"  // kind={task.kind} tiles={task.num_tiles} "
                 f"queue={task.queue_depth}")
    lines.append("  /*------- Dataflow specification -------*/")
    for node in task.dataflow.nodes:
        lines.append(f"  {_node_decl(node)}")
    lines.append("")
    lines.append("  /*------- Dependency connections -------*/")
    for conn in task.dataflow.connections:
        op = "<>" if not conn.latched else "<#>"
        lines.append(
            f"  {conn.dst.node.name}.io.{conn.dst.name.capitalize()}IO "
            f"{op} {conn.src.node.name}.io."
            f"{conn.src.name.capitalize()}(0)"
            f"  // {conn.width_bits}b")
    if task.junctions:
        lines.append("")
        lines.append("  /*------------ Junctions --------------*/")
        for junction in task.junctions:
            lines.append(
                f"  val {junction.name} = new Junction("
                f"R={junction.n_read}, W={junction.n_write}, "
                f"width={junction.issue_width})")
            for i, client in enumerate(junction.clients):
                lines.append(
                    f"  {junction.name}.io.Port({i}) <==> "
                    f"{client.name}.io.Mem")
    lines.append("}")
    return "\n".join(lines)


def emit_accelerator(circuit: AcceleratorCircuit) -> str:
    lines: List[str] = []
    lines.append(f"class Accelerator(val p: Parameters) "
                 f"extends Architecture {{")
    lines.append("  /*------------ Task Blocks -------------*/")
    for task in circuit.tasks.values():
        var = task.name
        lines.append(f"  val {var} = new {_camel(task.name)}()")
        if task.num_tiles > 1:
            lines.append(f"  {var}.tiles := {task.num_tiles}.U")
    lines.append("")
    lines.append("  /*------------ Structures -------------*/")
    for structure in circuit.structures:
        if isinstance(structure, Scratchpad):
            lines.append(
                f"  val {structure.name} = new Scratchpad("
                f"words={structure.size_words}, "
                f"banks={structure.banks}, "
                f"ports={structure.ports_per_bank})")
        elif isinstance(structure, Cache):
            lines.append(
                f"  val {structure.name} = new Cache("
                f"words={structure.size_words}, "
                f"banks={structure.banks}, "
                f"line={structure.line_words})")
        elif isinstance(structure, PerfCounterBank):
            lines.append(
                f"  val {structure.name} = new PerfCounterBank("
                f"n={len(structure.counters)}, width=32)"
                f"  // task={structure.task or '<global>'}")
            for i, spec in enumerate(structure.counters):
                lines.append(
                    f"  {structure.name}.io.Event({i}) := "
                    f"/* {spec.kind} */ tap(\"{spec.target}\")"
                    f"  // {spec.name}")
    lines.append("")
    lines.append("  /*------ Task interfaces ( <||> ) -------*/")
    for edge in circuit.task_edges:
        depth = f"depth={edge.queue_depth}"
        lines.append(
            f"  {edge.child}.io.task <||> "
            f"{edge.parent}.io.task  // {edge.kind}, {depth}")
    lines.append("")
    lines.append("  /*---- Memory interfaces ( <==> ) -------*/")
    port = 0
    for task in circuit.tasks.values():
        for junction in task.junctions:
            lines.append(
                f"  {junction.structure.name}.io.Mem({port}) <==> "
                f"{task.name}.{junction.name}.io.Out")
            port += 1
    for structure in circuit.structures:
        lines.append(f"  io.Mem.axi <==> {structure.name}.io.AXI")
    lines.append("}")
    return "\n".join(lines)


def emit_chisel(circuit: AcceleratorCircuit) -> str:
    """Full Chisel-flavoured source for a uIR circuit."""
    parts = [
        f"// Auto-generated from uIR graph '{circuit.name}'",
        "// (reproduction of the paper's Stage-3 lowering)",
        "package accel",
        "",
    ]
    for task in circuit.tasks.values():
        parts.append(emit_task(task))
        parts.append("")
    parts.append(emit_accelerator(circuit))
    parts.append("")
    return "\n".join(parts)

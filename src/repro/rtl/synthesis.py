"""Analytic synthesis model: Arria-10 FPGA and UMC 28 nm ASIC.

Substitutes for the paper's Quartus/Design-Compiler runs (Table 2).
The model aggregates per-component costs from :mod:`repro.rtl.library`
over the uIR graph (replicated per execution tile), adds handshake,
junction, queue and RAM-control overheads, and derives:

* **fmax** from the worst single-stage combinational delay plus a
  routing/congestion term that grows with design size, plus the
  task-queue penalty that puts Cilk designs in the paper's lower
  200-314 MHz band;
* **power** from static + per-resource dynamic coefficients (FPGA) or
  per-component dynamic power at the achieved clock + SRAM power
  (ASIC).

Absolute numbers are calibrated to land in Table 2's ranges; the
trends (FP vs Cilk vs tensor frequency bands, compute-heavy designs
drawing ~1 W on the FPGA, 4-6x ASIC clock gain on simple-op designs)
are structural.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..core import oplib
from ..core.circuit import AcceleratorCircuit, TaskBlock
from ..core.structures import Cache, PerfCounterBank, Scratchpad
from ..types import TensorType
from . import library as lib

#: FPGA power coefficients (mW).
FPGA_STATIC_MW = 420.0
FPGA_MW_PER_ALM = 0.075
FPGA_MW_PER_REG = 0.012
FPGA_MW_PER_DSP = 2.2
FPGA_MW_PER_RAM_KWORD = 6.0

#: Timing model (ns).
FPGA_ROUTING_BASE = 0.70
FPGA_ROUTING_SCALE = 0.16
TASK_QUEUE_PENALTY_NS = 1.55
ASIC_DELAY_SCALE = 0.42
ASIC_DELAY_BASE = 0.03
ASIC_TASK_QUEUE_PENALTY_NS = 0.08
ASIC_MAX_GHZ = 2.5
ASIC_MW_PER_KUM2 = 0.14
FPGA_MAX_MHZ = 500.0


@dataclass
class SynthesisReport:
    """Table 2 row for one accelerator."""

    name: str
    fpga_mhz: float
    fpga_mw: float
    alms: int
    regs: int
    dsps: int
    asic_ghz: float
    asic_mw: float
    asic_area_kum2: float
    # -- instrumentation overhead (perf_counters pass), included in
    # the totals above but also broken out so reports can show the
    # price of the PMU.  Defaults keep uninstrumented reports and the
    # pinned Table-2 row() shape unchanged.
    pmu_counters: int = 0
    pmu_alms: int = 0
    pmu_regs: int = 0
    pmu_area_kum2: float = 0.0

    def row(self) -> Dict[str, object]:
        return {
            "bench": self.name,
            "MHz": round(self.fpga_mhz),
            "mW": round(self.fpga_mw),
            "ALMs": self.alms,
            "Reg": self.regs,
            "DSP": self.dsps,
            "kum2": round(self.asic_area_kum2, 1),
            "asic_mW": round(self.asic_mw),
            "GHz": round(self.asic_ghz, 2),
        }

    def to_json(self) -> Dict[str, object]:
        """Full-precision document (round-trips via :meth:`from_json`)."""
        from dataclasses import asdict
        return asdict(self)

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "SynthesisReport":
        return cls(**doc)


def _width_factor(node) -> float:
    """Bit-width tuning scales integer datapath cost (floor 25%)."""
    tuned = getattr(node, "tuned_width", None)
    if tuned is None:
        return 1.0
    return max(0.25, tuned / 32.0)


def _node_cost(node) -> lib.ComponentCost:
    kind = node.kind
    if kind in ("compute",):
        info = oplib.op_info(node.op, node.out.type)
        cost = lib.component_cost(info.area_class)
        if info.area_class.startswith("int_"):
            cost = lib.scale_cost(cost, _width_factor(node))
        return cost
    if kind == "tensor":
        info = oplib.op_info(node.op, node.out.type)
        base = lib.component_cost(info.area_class)
        t = node.out.type
        scale = (t.elements / 4.0) if isinstance(t, TensorType) else 1.0
        return lib.scale_cost(base, scale)
    if kind == "fused":
        total = lib.ZERO_COST
        for op, _refs, rtype, _s in node.exprs:
            info = oplib.op_info(op, rtype)
            total = lib.add_costs(total,
                                  lib.component_cost(info.area_class))
        return total
    if kind in ("select", "phi"):
        return lib.component_cost("mux")
    if kind == "const":
        return lib.component_cost("const")
    if kind in ("livein", "liveout"):
        return lib.component_cost("buffer")
    if kind == "loopctl":
        return lib.component_cost("loop_control")
    if kind in ("load", "store"):
        base = lib.component_cost("mem_port")
        t = node.out.type if kind == "load" else node.value_type
        return lib.scale_cost(base, max(1, t.words))
    if kind in ("call", "spawn", "sync"):
        return lib.component_cost("task_iface")
    return lib.ZERO_COST


def _node_delay(node) -> float:
    kind = node.kind
    if kind in ("compute", "tensor"):
        return oplib.op_info(node.op, node.out.type).delay_ns
    if kind == "fused":
        return node.delay_ns
    if kind == "select":
        return oplib.op_info("select", None).delay_ns
    if kind == "loopctl":
        return oplib.op_info("loopctl", None).delay_ns
    if kind in ("load", "store"):
        return oplib.op_info("load", None).delay_ns
    if kind in ("call", "spawn", "sync"):
        return oplib.op_info("call", None).delay_ns
    return 0.15


def _task_cost(task: TaskBlock) -> lib.ComponentCost:
    total = lib.ZERO_COST
    for node in task.dataflow.nodes:
        total = lib.add_costs(total, _node_cost(node))
    for conn in task.dataflow.connections:
        if conn.latched or not conn.buffered:
            continue  # balanced-away edges carry no handshake stage
        bits = conn.tuned_bits or conn.width_bits
        hs = lib.add_costs(
            lib.HANDSHAKE_BASE,
            lib.scale_cost(lib.HANDSHAKE_COST_PER_BIT, max(1, bits)))
        total = lib.add_costs(total, hs)
    for junction in task.junctions:
        total = lib.add_costs(
            total, lib.scale_cost(lib.JUNCTION_PER_CLIENT,
                                  len(junction.clients)))
    # Execution tiling replicates the whole block + adds a crossbar.
    if task.num_tiles > 1:
        total = lib.scale_cost(total, task.num_tiles)
        total = lib.add_costs(
            total, lib.scale_cost(lib.TILE_CROSSBAR, task.num_tiles - 1))
    return total


def _has_task_queues(circuit: AcceleratorCircuit) -> bool:
    """Cilk-style designs: spawn edges or recursive call edges."""
    for edge in circuit.task_edges:
        if edge.kind == "spawn" or edge.parent == edge.child:
            return True
    return False


def synthesize(circuit: AcceleratorCircuit,
               name: Optional[str] = None) -> SynthesisReport:
    """Estimate FPGA and ASIC implementation quality for a circuit."""
    total = lib.ZERO_COST
    for task in circuit.tasks.values():
        total = lib.add_costs(total, _task_cost(task))
    for edge in circuit.task_edges:
        total = lib.add_costs(
            total, lib.scale_cost(lib.TASK_QUEUE_PER_ENTRY,
                                  edge.queue_depth))
    ram_kwords = 0.0
    pmu = lib.ZERO_COST
    pmu_counters = 0
    for structure in circuit.structures:
        if isinstance(structure, (Scratchpad, Cache)):
            total = lib.add_costs(total, lib.RAM_CONTROL)
            banks = structure.banks
            total = lib.add_costs(
                total, lib.scale_cost(lib.RAM_PER_BANK, banks))
            ram_kwords += structure.size_words / 1024.0
        elif isinstance(structure, PerfCounterBank):
            cost = lib.add_costs(
                lib.PMU_BASE,
                lib.scale_cost(lib.PMU_PER_COUNTER,
                               len(structure.counters)))
            pmu = lib.add_costs(pmu, cost)
            pmu_counters += len(structure.counters)
    total = lib.add_costs(total, pmu)

    # Critical stage delay.
    worst_delay = 0.35
    for node in circuit.all_nodes():
        worst_delay = max(worst_delay, _node_delay(node))
    cilk = _has_task_queues(circuit)

    routing = FPGA_ROUTING_BASE + FPGA_ROUTING_SCALE * math.log1p(
        max(total.alms, 1) / 1000.0)
    period = worst_delay + routing
    if cilk:
        period += TASK_QUEUE_PENALTY_NS
    fpga_mhz = min(FPGA_MAX_MHZ, 1000.0 / period)

    fpga_mw = (FPGA_STATIC_MW
               + total.alms * FPGA_MW_PER_ALM
               + total.regs * FPGA_MW_PER_REG
               + total.dsps * FPGA_MW_PER_DSP
               + ram_kwords * FPGA_MW_PER_RAM_KWORD)

    asic_period = worst_delay * ASIC_DELAY_SCALE + ASIC_DELAY_BASE
    if cilk:
        asic_period += ASIC_TASK_QUEUE_PENALTY_NS
    asic_ghz = min(ASIC_MAX_GHZ, 1.0 / asic_period)
    asic_area_kum2 = total.area_um2 / 1000.0
    asic_mw = (total.power_mw_ghz * asic_ghz * 1000.0 / 1000.0
               + asic_area_kum2 * ASIC_MW_PER_KUM2
               + ram_kwords * lib.RAM_PER_KWORD_POWER_MW)

    return SynthesisReport(
        name=name or circuit.name,
        fpga_mhz=fpga_mhz,
        fpga_mw=fpga_mw,
        alms=total.alms,
        regs=total.regs,
        dsps=total.dsps,
        asic_ghz=asic_ghz,
        asic_mw=asic_mw,
        asic_area_kum2=asic_area_kum2,
        pmu_counters=pmu_counters,
        pmu_alms=pmu.alms,
        pmu_regs=pmu.regs,
        pmu_area_kum2=pmu.area_um2 / 1000.0,
    )

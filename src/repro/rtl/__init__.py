"""Stage 3: lowering uIR to RTL and estimating implementation quality.

* :mod:`repro.rtl.library` — component cost database (FPGA ALM/Reg/DSP,
  ASIC area/power, stage delays).
* :mod:`repro.rtl.synthesis` — analytic Arria-10 / UMC-28nm model
  (Table 2 substitute; see DESIGN.md).
* :mod:`repro.rtl.chisel` — Chisel-flavoured structural emitter
  (paper Figures 4 and 6).
* :mod:`repro.rtl.firrtl` — FIRRTL-like low-level circuit graph, the
  comparison target for the paper's section 7 productivity study.
* :mod:`repro.rtl.verilog` — plain Verilog skeleton emitter.
"""

from .library import component_cost  # noqa: F401
from .synthesis import SynthesisReport, synthesize  # noqa: F401
from .chisel import emit_chisel  # noqa: F401
from .firrtl import FirrtlCircuit, diff_circuits, lower_to_firrtl  # noqa: F401
from .verilog import emit_verilog  # noqa: F401

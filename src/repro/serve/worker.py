"""The serve worker: pool entry points + the hot-circuit LRU.

Each pool worker (process or thread) keeps a process-global LRU of
evaluation *front ends* — translated + optimized circuit objects with
their pass logs — keyed by the request's group identity.  A warm
request skips MiniC -> uIR -> uopt entirely, and because the circuit
*object* is reused, :mod:`repro.sim.compile`'s object-identity memo
keeps the specialized compiled kernel pinned too: the expensive half
of an evaluation amortizes across every request for the same design.

Only plain JSON documents cross the process boundary (request docs
in, response docs out); everything stateful stays worker-local.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import (EvaluationRequest, Pipeline, batch_evaluation_docs,
                   build_front, coerce_request_args, execute)
from ..api.requests import EVAL_SCHEMA
from ..errors import (ReproError, error_document, error_family,
                      family_for, unexpected_error_document)

#: Chaos-injection env var (test/CI only): ``{"kill_request":
#: {"substr": ..., "flag": ...}}`` SIGKILLs the worker the first time
#: it picks up a request whose describe() contains the substring —
#: the supervision tests drive worker-death recovery with it.
CHAOS_ENV = "REPRO_SERVE_CHAOS"

#: Hot front-ends kept per worker.  Front ends are a few MB each at
#: most (graph + pass log); 32 designs comfortably covers a serving
#: mix while bounding a long-lived daemon's footprint.
LRU_CAPACITY = 32


class _FrontLRU:
    """A tiny thread-safe LRU of evaluation front ends."""

    def __init__(self, capacity: int = LRU_CAPACITY):
        self.capacity = capacity
        self._entries: "OrderedDict[str, Dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Dict]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, entry: Dict) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = 0


_LRU = _FrontLRU()


def front_key(request: EvaluationRequest) -> str:
    """LRU identity of a request's front end: everything the
    translate+optimize stages depend on (and ``name``, which flows
    into the evaluation document)."""
    import hashlib
    doc = json.dumps(
        [request.workload, request.source, request.variant,
         request.passes, request.name],
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def _pipeline_for(request: EvaluationRequest) -> Tuple[Pipeline, str]:
    """A fresh :class:`Pipeline` over the (possibly cached) front end.

    The cached circuit/module/pass-log are shared across requests; the
    Pipeline wrapper is rebuilt per request so mutable result state
    (sim, memory, synth) never leaks between evaluations.
    """
    key = front_key(request)
    entry = _LRU.get(key)
    if entry is None:
        pipe = build_front(request)
        _LRU.put(key, {
            "workload": pipe.workload,
            "module": pipe.module,
            "circuit": pipe.circuit,
            "pass_log": tuple(pipe.pass_log),
            "pass_spec": pipe.pass_spec,
            "name": pipe.name,
            "variant": pipe.variant,
        })
        return pipe, "miss"
    pipe = Pipeline.from_circuit(entry["circuit"],
                                 workload=entry["workload"],
                                 variant=entry["variant"])
    pipe.module = entry["module"]
    pipe.name = entry["name"]
    pipe.pass_log = list(entry["pass_log"])
    pipe.pass_spec = entry["pass_spec"]
    return pipe, "hit"


def _spend_flag(flag: Optional[str]) -> bool:
    if not flag:
        return True
    if os.path.exists(flag):
        return False
    with open(flag, "w"):
        pass
    return True


def _maybe_chaos(request: EvaluationRequest) -> None:
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return
    try:
        doc = json.loads(spec)
    except ValueError:
        return
    kill = doc.get("kill_request") or {}
    substr = kill.get("substr")
    if substr and substr in request.describe() \
            and _spend_flag(kill.get("flag")):
        os.kill(os.getpid(), signal.SIGKILL)


def run_payload(doc: Dict) -> Dict:
    """Pool entry point for one request document.

    Never raises: malformed requests and evaluation failures come
    back as error response documents (with a retry ``family``), so
    the scheduler can classify them.  ``meta.lru`` records whether
    the front end was served warm.
    """
    t0 = time.perf_counter()
    try:
        request = EvaluationRequest.from_json(doc)
    except ReproError as exc:
        return _error_response(exc, t0)
    _maybe_chaos(request)
    try:
        pipe, lru = _pipeline_for(request)
        response = execute(request, pipeline=pipe)
    except ReproError as exc:  # front-end failure outside execute()
        out = _error_response(exc, t0)
        out["request_key"] = request.canonical_key()
        return out
    except Exception as exc:  # noqa: BLE001 - the daemon must survive
        out = {"schema": EVAL_SCHEMA, "status": "error",
               "request_key": request.canonical_key(),
               "evaluation": None, "lanes": None,
               "error": unexpected_error_document(exc),
               "meta": {"wall_s": round(time.perf_counter() - t0, 4)}}
        out["error"].setdefault("family", family_for(exc))
        return out
    out = response.to_json()
    out["meta"]["lru"] = lru
    out["meta"]["pid"] = os.getpid()
    sim = pipe.sim
    if sim is not None and sim.trace is not None:
        # Host-local trace-tier tallies (meta, NOT the evaluation doc:
        # ``warm`` depends on LRU state, so it is strategy-dependent
        # by construction).  A warm front end carries its compiled
        # artifact's proven firing sets, so repeat requests re-arm
        # without re-detection — ``warm`` counts exactly that.
        out["meta"]["trace"] = {
            "formed": sim.trace["formed"],
            "warm": sim.trace["warm"],
            "coverage": sim.trace["coverage"],
        }
    return out


def run_group_payload(docs: Sequence[Dict]) -> List[Dict]:
    """Pool entry point for a coalesced lane-group.

    Every document shares one :meth:`EvaluationRequest.group_key`
    (the scheduler guarantees it): same design, variant, passes, sim
    config and check policy, differing only in root arguments.  The
    group runs as ONE ``simulate_batch`` over a shared front end, and
    each request gets back the response document a scalar
    :func:`repro.api.execute` of that request would have produced —
    bit-identical payload, including the request's own
    ``canonical_key`` (PR-6's per-lane identity carried to the wire).

    A front-end failure fails every request in the group with the
    same error document; per-lane simulation failures fail only their
    own request.
    """
    t0 = time.perf_counter()
    requests: List[Optional[EvaluationRequest]] = []
    outs: List[Optional[Dict]] = []
    for doc in docs:
        try:
            requests.append(EvaluationRequest.from_json(doc))
            outs.append(None)
        except ReproError as exc:
            requests.append(None)
            outs.append(_error_response(exc, t0))
    live = [(i, r) for i, r in enumerate(requests) if r is not None]
    if not live:
        return [out for out in outs if out is not None]
    base = live[0][1]
    for _, request in live:
        _maybe_chaos(request)
    try:
        params = base.sim_params()
        pipe, lru = _pipeline_for(base)
        args_list = []
        for _, request in live:
            if request.args is not None:
                args_list.append(
                    coerce_request_args(pipe.module, request.args))
            elif pipe.workload is not None:
                args_list.append(
                    list(pipe.workload.args_for(pipe.variant)))
            else:
                args_list.append([])
        batch = pipe.evaluate_many(args_list, params, check=base.check)
        pipe.synthesize()
    except ReproError as exc:
        shared = _error_response(exc, t0)
        for i, request in live:
            out = dict(shared)
            out["request_key"] = request.canonical_key()
            outs[i] = out
        return [out for out in outs if out is not None]
    except Exception as exc:  # noqa: BLE001 - the daemon must survive
        doc = unexpected_error_document(exc)
        doc.setdefault("family", family_for(exc))
        wall = round(time.perf_counter() - t0, 4)
        for i, request in live:
            outs[i] = {"schema": EVAL_SCHEMA, "status": "error",
                       "request_key": request.canonical_key(),
                       "evaluation": None, "lanes": None,
                       "error": dict(doc), "meta": {"wall_s": wall}}
        return [out for out in outs if out is not None]
    lane_docs = batch_evaluation_docs(pipe, batch)
    wall = round(time.perf_counter() - t0, 4)
    for lane, (i, request) in enumerate(live):
        lane_doc = dict(lane_docs[lane])
        lane_doc.pop("lane", None)
        meta = {"wall_s": wall, "lru": lru, "pid": os.getpid(),
                "coalesced": len(live), "lane": lane}
        if "error" in lane_doc and "name" not in lane_doc:
            err = dict(lane_doc["error"])
            err.setdefault("family",
                           error_family(err.get("error", "")))
            outs[i] = {"schema": EVAL_SCHEMA, "status": "error",
                       "request_key": request.canonical_key(),
                       "evaluation": None, "lanes": None,
                       "error": err, "meta": meta}
        else:
            outs[i] = {"schema": EVAL_SCHEMA, "status": "ok",
                       "request_key": request.canonical_key(),
                       "evaluation": lane_doc, "lanes": None,
                       "error": None, "meta": meta}
    return [out for out in outs if out is not None]


def lru_counts() -> Dict[str, int]:
    """This worker's LRU tallies (test/debug introspection)."""
    return {"hits": _LRU.hits, "misses": _LRU.misses,
            "entries": len(_LRU._entries)}


def reset_lru() -> None:
    _LRU.clear()


def _error_response(exc: BaseException, t0: float) -> Dict:
    doc = error_document(exc)
    doc["family"] = family_for(exc)
    return {"schema": EVAL_SCHEMA, "status": "error",
            "request_key": "", "evaluation": None, "lanes": None,
            "error": doc,
            "meta": {"wall_s": round(time.perf_counter() - t0, 4)}}

"""repro.serve — the accelerator-evaluation daemon.

Long-lived serving front end over :mod:`repro.api`'s typed
request/response schema: an asyncio daemon (:mod:`.server`) that
dedupes identical in-flight requests, coalesces compatible scalar
requests into batched lane-groups, supervises a worker pool with
retry/quarantine (PR 8's machinery), and keeps hot circuit front ends
pinned in a per-worker LRU (:mod:`.worker`).  :mod:`.client` is the
synchronous client library; :mod:`.protocol` the HTTP-lite/NDJSON
framing.

Quickstart::

    repro serve --port 8651 &
    repro client evaluate fib --passes op_fusion --address :8651

or in code::

    from repro.serve import ServeClient, start_in_thread
    handle = start_in_thread(executor="thread")
    client = ServeClient(handle.address)
    response = client.evaluate(request_for("fib", "op_fusion"))
"""

from .client import (ServeClient, ServeConnectionError, ServeTimeout,
                     parse_address, response_payload_bytes)
from .protocol import PROTOCOL, ProtocolError
from .scheduler import COUNTER_KEYS, Scheduler
from .server import ServeServer, ServerHandle, start_in_thread

__all__ = [
    "COUNTER_KEYS", "PROTOCOL", "ProtocolError", "Scheduler",
    "ServeClient", "ServeConnectionError", "ServeServer",
    "ServeTimeout", "ServerHandle", "parse_address",
    "response_payload_bytes", "start_in_thread",
]

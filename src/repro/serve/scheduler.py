"""The serve scheduler: request queue, dedup, coalescing, supervision.

One :class:`Scheduler` per daemon.  Connections :meth:`submit`
requests and get back a :class:`Job`; the scheduler's asyncio worker
loops drain the queue into a supervised executor pool:

* **Dedup** — a request whose ``canonical_key`` matches a queued or
  running job attaches to that job instead of enqueuing a second
  execution: one computation, N subscribers, all of whom receive the
  *same serialized payload bytes* (the response is serialized exactly
  once, at finalization).
* **Coalescing** — when a worker picks up a coalescible scalar
  request it drains every queued request with the same ``group_key``
  (same design/variant/passes/sim/check, differing only in root
  arguments) into one ``simulate_batch`` lane-group, up to
  ``max_batch`` lanes: one front end and one compiled circuit for
  the whole group.
* **Supervision** — PR 8's machinery, re-aimed at serving: transient
  failures retry with :class:`~repro.dse.engine.RetryPolicy` backoff,
  a ``BrokenProcessPool`` respawns the pool and re-enqueues the
  group's members as singletons, and a request that kills workers
  twice is quarantined with a ``PoisonPointError`` document instead
  of taking the daemon down with it.

Scheduling counters are plain dict state (always on — ``report``
must work without telemetry); when telemetry is enabled they are
mirrored into the metrics registry and every finalized request also
appends one ledger record.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Deque, Dict, List, Optional

from .. import telemetry
from ..dse.engine import (RetryPolicy, _drop_pool, _kill_pool,
                          default_workers)
from ..errors import PoisonPointError, ReproError, error_document
from . import worker as _worker
from .protocol import event_bytes

EXECUTORS = ("process", "thread")

#: Scheduler counters, all always-on.  ``dedup_hits`` counts requests
#: answered by an already in-flight computation; ``coalesced_lanes``
#: counts requests that rode a shared lane-group beyond its first.
COUNTER_KEYS = (
    "requests", "dedup_hits", "executions", "batches",
    "coalesced_lanes", "ok", "errors", "retries", "worker_deaths",
    "timeouts", "quarantined", "lru_hits",
)


class Job:
    """One deduplicated unit of queued/running/finished work."""

    __slots__ = ("request", "doc", "key", "group", "verb",
                 "coalescible", "state", "done", "response_doc",
                 "payload_bytes", "enqueued", "started", "finished",
                 "attempts", "deaths", "subscribers")

    def __init__(self, request, doc: Dict):
        self.request = request
        self.doc = doc                      # request wire document
        self.key = request.canonical_key()
        self.group = request.group_key()
        self.verb = request.kind
        self.coalescible = request.coalescible
        self.state = "queued"               # queued | running | done
        self.done = asyncio.Event()
        self.response_doc: Optional[Dict] = None
        self.payload_bytes: Optional[bytes] = None
        self.enqueued = time.monotonic()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.attempts = 0
        self.deaths = 0
        self.subscribers = 1

    @property
    def wait_s(self) -> float:
        return (self.started or time.monotonic()) - self.enqueued


class Scheduler:
    """Owns the queue, the dedup table, and the executor pool."""

    def __init__(self, *, workers: Optional[int] = None,
                 executor: str = "process", max_batch: int = 8,
                 retry: Optional[RetryPolicy] = None,
                 job_timeout: Optional[float] = None,
                 ledger_root: Optional[str] = None):
        if executor not in EXECUTORS:
            raise ReproError(
                f"unknown executor {executor!r}; "
                f"known: {', '.join(EXECUTORS)}")
        self.workers = workers or default_workers()
        self.executor_kind = executor
        self.max_batch = max(1, max_batch)
        self.retry = retry or RetryPolicy()
        self.job_timeout = job_timeout
        self.counters: Dict[str, int] = dict.fromkeys(COUNTER_KEYS, 0)
        self.started_at = time.time()
        self._queue: Deque[Job] = deque()
        self._inflight: Dict[str, Job] = {}
        self._wakeup: Optional[asyncio.Condition] = None
        self._pool = None
        self._pool_lock: Optional[asyncio.Lock] = None
        self._tasks: List[asyncio.Task] = []
        self._closing = False
        self._ledger = None
        if ledger_root is not None:
            from ..telemetry.ledger import RunLedger
            self._ledger = RunLedger(ledger_root)

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        self._wakeup = asyncio.Condition()
        self._pool_lock = asyncio.Lock()
        self._pool = self._new_pool()
        self._tasks = [
            asyncio.create_task(self._worker_loop(i),
                                name=f"serve-worker-{i}")
            for i in range(self.workers)]

    def _new_pool(self):
        if self.executor_kind == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="serve")

    async def close(self) -> None:
        self._closing = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks = []
        if self.executor_kind == "process":
            _kill_pool(self._pool)
        self._pool = _drop_pool(self._pool)
        # Fail anything still queued so no subscriber hangs.
        shutdown_doc = error_document(
            ReproError("server shut down before this request ran"))
        shutdown_doc["family"] = "transient"
        for job in list(self._inflight.values()):
            if not job.done.is_set():
                self._finalize_error(job, shutdown_doc)

    # -- submission --------------------------------------------------------
    async def submit(self, request, doc: Optional[Dict] = None) -> Job:
        """Enqueue (or attach to) the job for ``request``; the caller
        awaits ``job.done`` and streams ``job.payload_bytes``."""
        if self._closing:
            raise ReproError("server is shutting down")
        self.counters["requests"] += 1
        key = request.canonical_key()
        job = self._inflight.get(key)
        if job is not None:
            job.subscribers += 1
            self.counters["dedup_hits"] += 1
            self._mirror("serve.dedup.hits")
            return job
        job = Job(request, doc if doc is not None
                  else request.to_json())
        self._inflight[key] = job
        self._queue.append(job)
        self._gauge_depth()
        async with self._wakeup:
            self._wakeup.notify()
        return job

    def queue_depth(self) -> int:
        return len(self._queue)

    def snapshot(self) -> Dict:
        """The ``report`` verb's scheduler section."""
        return {
            "counters": dict(self.counters),
            "queue_depth": len(self._queue),
            "inflight": sum(1 for j in self._inflight.values()
                            if j.state != "done"),
            "workers": self.workers,
            "executor": self.executor_kind,
            "max_batch": self.max_batch,
            "uptime_s": round(time.time() - self.started_at, 3),
        }

    async def drain(self) -> None:
        """Wait until every accepted request has finalized (tests)."""
        while any(not j.done.is_set()
                  for j in self._inflight.values()) or self._queue:
            await asyncio.sleep(0.01)

    # -- the worker loops --------------------------------------------------
    async def _worker_loop(self, slot: int) -> None:
        while True:
            async with self._wakeup:
                while not self._queue:
                    await self._wakeup.wait()
                job = self._queue.popleft()
                group = self._coalesce(job)
            self._gauge_depth()
            try:
                await self._run_group(group)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - loop must live
                doc = error_document(exc) if isinstance(exc, ReproError) \
                    else {"error": type(exc).__name__,
                          "message": str(exc), "exit_code": 1}
                doc["family"] = "deterministic"
                for member in group:
                    if not member.done.is_set():
                        self._finalize_error(member, doc)

    def _coalesce(self, job: Job) -> List[Job]:
        """Drain queued jobs compatible with ``job`` into one
        lane-group (caller holds the wakeup lock)."""
        group = [job]
        if not job.coalescible or self.max_batch < 2:
            return group
        keep: Deque[Job] = deque()
        while self._queue and len(group) < self.max_batch:
            other = self._queue.popleft()
            if other.coalescible and other.group == job.group:
                group.append(other)
            else:
                keep.append(other)
        self._queue.extendleft(reversed(keep))
        return group

    async def _run_group(self, group: List[Job]) -> None:
        for job in group:
            job.state = "running"
            job.started = time.monotonic()
            job.attempts += 1
        loop = asyncio.get_running_loop()
        docs = [job.doc for job in group]
        try:
            if len(group) == 1:
                future = loop.run_in_executor(
                    self._pool, _worker.run_payload, docs[0])
            else:
                future = loop.run_in_executor(
                    self._pool, _worker.run_group_payload, docs)
            if self.job_timeout:
                outs = await asyncio.wait_for(future, self.job_timeout)
            else:
                outs = await future
        except BrokenProcessPool:
            await self._handle_deaths(group)
            return
        except asyncio.TimeoutError:
            await self._handle_timeout(group, future)
            return
        if len(group) == 1:
            outs = [outs]
        self.counters["executions"] += 1
        if len(group) > 1:
            self.counters["batches"] += 1
            self.counters["coalesced_lanes"] += len(group) - 1
            self._mirror("serve.batch.lanes", len(group) - 1)
            if telemetry.enabled():
                telemetry.metrics().histogram(
                    "serve.batch.size",
                    buckets=(1, 2, 4, 8, 16)).observe(len(group))
        for job, out in zip(group, outs):
            if out.get("meta", {}).get("lru") == "hit":
                self.counters["lru_hits"] += 1
                self._mirror("serve.lru.hits")
            error = out.get("error") or {}
            if out.get("status") == "error" \
                    and error.get("family") == "transient" \
                    and job.attempts < self.retry.max_attempts:
                await self._requeue(job)
            else:
                self._finalize(job, out)

    # -- supervision -------------------------------------------------------
    async def _handle_deaths(self, group: List[Job]) -> None:
        """The pool broke under this group: respawn it, quarantine
        repeat offenders, retry the rest as singletons."""
        async with self._pool_lock:
            _kill_pool(self._pool)
            self._pool = _drop_pool(self._pool)
            self._pool = self._new_pool()
        self.counters["worker_deaths"] += 1
        self._mirror("serve.worker.deaths")
        for job in group:
            job.deaths += 1
            if job.deaths >= 2:
                exc = PoisonPointError(
                    f"request {job.key[:12]} killed {job.deaths} "
                    f"worker(s); quarantined", deaths=job.deaths)
                doc = error_document(exc)
                doc["family"] = "poison"
                doc["deaths"] = job.deaths
                self.counters["quarantined"] += 1
                self._mirror("serve.quarantined")
                self._finalize_error(job, doc)
            else:
                await self._requeue(job, singleton=True)

    async def _handle_timeout(self, group: List[Job], future) -> None:
        """Supervisor-side deadline fired.  Process pools are killed
        and respawned (the hung worker cannot be cancelled); thread
        pools can only abandon the future."""
        self.counters["timeouts"] += 1
        self._mirror("serve.timeouts")
        if self.executor_kind == "process":
            async with self._pool_lock:
                _kill_pool(self._pool)
                self._pool = _drop_pool(self._pool)
                self._pool = self._new_pool()
        doc = {"error": "SupervisorTimeout",
               "message": f"request exceeded the server deadline "
                          f"({self.job_timeout:g}s)",
               "exit_code": 6, "family": "transient"}
        for job in group:
            if job.attempts < self.retry.max_attempts:
                await self._requeue(job, singleton=True)
            else:
                self._finalize_error(job, doc)

    async def _requeue(self, job: Job, *,
                       singleton: bool = False) -> None:
        self.counters["retries"] += 1
        self._mirror("serve.retries")
        job.state = "queued"
        if singleton:
            # A request that broke a shared group retries alone so it
            # cannot take innocent lane-mates down a second time.
            job.coalescible = False
        delay = self.retry.delay(job.attempts)

        async def _delayed():
            await asyncio.sleep(delay)
            if job.done.is_set():
                return
            self._queue.append(job)
            async with self._wakeup:
                self._wakeup.notify()

        asyncio.get_running_loop().create_task(_delayed())

    # -- finalization ------------------------------------------------------
    def _finalize(self, job: Job, out: Dict) -> None:
        job.response_doc = out
        ok = out.get("status") == "ok"
        self.counters["ok" if ok else "errors"] += 1
        self._mirror("serve.ok" if ok else "serve.errors")
        self._seal(job)

    def _finalize_error(self, job: Job, error_doc: Dict) -> None:
        from ..api.requests import EVAL_SCHEMA
        job.response_doc = {
            "schema": EVAL_SCHEMA, "status": "error",
            "request_key": job.key, "evaluation": None, "lanes": None,
            "error": dict(error_doc),
            "meta": {"wall_s": round(time.monotonic()
                                     - job.enqueued, 4)}}
        self.counters["errors"] += 1
        self._mirror("serve.errors")
        self._seal(job)

    def _seal(self, job: Job) -> None:
        """Serialize ONCE; every subscriber streams the same bytes."""
        job.state = "done"
        job.finished = time.monotonic()
        doc = dict(job.response_doc)
        payload = {k: v for k, v in doc.items() if k != "meta"}
        job.payload_bytes = event_bytes(
            {"event": "result", "response": doc,
             "payload_sha": _sha(payload)})
        self._inflight.pop(job.key, None)
        self._record(job)
        job.done.set()

    # -- telemetry glue ----------------------------------------------------
    def _mirror(self, name: str, n: int = 1) -> None:
        if telemetry.enabled():
            telemetry.metrics().counter(name).inc(n)

    def _gauge_depth(self) -> None:
        if telemetry.enabled():
            telemetry.metrics().gauge(
                "serve.queue.depth").set(len(self._queue))

    def _record(self, job: Job) -> None:
        """One ledger record + one span per finalized request."""
        wall = (job.finished or time.monotonic()) - job.enqueued
        if telemetry.enabled():
            with telemetry.tracer().span(
                    "serve.request", verb=job.verb,
                    key=job.key[:12]) as sp:
                sp.set(attempts=job.attempts,
                       subscribers=job.subscribers,
                       wait_ms=round(job.wait_s * 1e3, 3))
        if self._ledger is None:
            return
        from ..telemetry.ledger import build_record, new_run_id
        out = job.response_doc or {}
        error = out.get("error")
        try:
            self._ledger.append(build_record(
                run_id=new_run_id(), command="serve",
                argv=[job.verb, job.request.describe()],
                status="ok" if out.get("status") == "ok" else "error",
                exit_code=0 if out.get("status") == "ok"
                else int((error or {}).get("exit_code", 1)),
                wall_s=wall, started=time.time() - wall,
                annotations={"request_key": job.key,
                             "attempts": job.attempts,
                             "subscribers": job.subscribers},
                error=error))
        except OSError:
            pass  # ledger I/O must never fail a request


def _sha(doc: Dict) -> str:
    import hashlib
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()

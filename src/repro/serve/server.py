"""The evaluation daemon: asyncio front door over the scheduler.

``ServeServer`` binds a TCP port or Unix socket, parses HTTP-lite
requests (:mod:`repro.serve.protocol`), and streams NDJSON events
back: a ``hello``, periodic ``heartbeat`` lines while the request is
queued or running, then exactly one ``result``.  Heartbeats come from
the event loop (per connection, time-based) — simulation-side
callbacks cannot cross the worker pool boundary, and a queued request
deserves liveness signals too.

Verbs:

``POST /v1/evaluate`` / ``/v1/evaluate_many``
    Body: an :class:`~repro.api.EvaluationRequest` document.  Both
    paths accept both kinds (the request's ``kind`` field rules).
``POST /v1/explore``
    Body: a sweep spec (see :meth:`ServeServer._handle_explore`); the
    sweep is planned with :func:`repro.dse.engine.plan_points` and
    every point funnels through the same scheduler queue as single
    evaluates — dedup and coalescing apply to sweep points too.
``POST /v1/report``
    Scheduler counters, queue depth, and (if telemetry is on) a
    metrics snapshot.
``POST /v1/health`` / ``POST /v1/shutdown``
    Liveness probe / graceful stop.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
from typing import Dict, List, Optional

from .. import telemetry
from ..api.requests import EvaluationRequest
from ..dse.engine import (METRICS, PointResult, RetryPolicy,
                          pareto_frontier, plan_points)
from ..errors import ReproError, error_document
from .protocol import (PROTOCOL, ProtocolError, event_bytes,
                       read_request, response_header, verb_of)
from .scheduler import Scheduler

DEFAULT_HEARTBEAT_S = 2.0


class ServeServer:
    """One daemon: a listener, a scheduler, and its connections."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 socket_path: Optional[str] = None,
                 workers: Optional[int] = None,
                 executor: str = "process",
                 max_batch: int = 8,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 retry: Optional[RetryPolicy] = None,
                 job_timeout: Optional[float] = None,
                 ledger_root: Optional[str] = None):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.heartbeat_s = max(0.05, heartbeat_s)
        self.scheduler = Scheduler(
            workers=workers, executor=executor, max_batch=max_batch,
            retry=retry, job_timeout=job_timeout,
            ledger_root=ledger_root)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        self._stop = asyncio.Event()
        await self.scheduler.start()
        if self.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port)
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        """Client-ready address string (``host:port`` or
        ``unix:/path``)."""
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"{self.host}:{self.port}"

    async def serve_until_stopped(self) -> None:
        await self._stop.wait()
        await self.aclose()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()
        if self.socket_path:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)

    def run(self) -> None:
        """Blocking entry point (the CLI's ``repro serve``)."""
        async def _main():
            await self.start()
            await self.serve_until_stopped()
        asyncio.run(_main())

    # -- connection handling -----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await read_request(reader)
            except ProtocolError as exc:
                await self._reject(writer, exc)
                return
            if not method:  # probe/scan: closed without a request
                return
            try:
                if method != "POST":
                    raise ProtocolError(
                        f"only POST is supported, got {method}")
                verb = verb_of(path)
            except ProtocolError as exc:
                await self._reject(writer, exc)
                return
            writer.write(response_header())
            await self._hello(writer, verb)
            handler = getattr(self, f"_handle_{verb}")
            await handler(writer, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            with contextlib.suppress(Exception):
                await self._event(writer, {
                    "event": "error", **error_document(exc)})
        finally:
            with contextlib.suppress(Exception):
                writer.write_eof()
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _reject(self, writer, exc: ProtocolError) -> None:
        writer.write(response_header(400, "Bad Request"))
        await self._event(writer, {"event": "error",
                                   **error_document(exc)})

    async def _hello(self, writer, verb: str) -> None:
        await self._event(writer, {
            "event": "hello", "protocol": PROTOCOL, "verb": verb,
            "pid": os.getpid(),
            "workers": self.scheduler.workers,
            "executor": self.scheduler.executor_kind})

    async def _event(self, writer, doc: Dict) -> None:
        writer.write(event_bytes(doc))
        await writer.drain()

    # -- verbs -------------------------------------------------------------
    async def _handle_evaluate(self, writer, body) -> None:
        if not isinstance(body, dict):
            raise ProtocolError("evaluate needs a JSON request body")
        try:
            request = EvaluationRequest.from_json(body)
        except ReproError as exc:
            doc = error_document(exc)
            doc["family"] = "deterministic"
            await self._event(writer, {"event": "error", **doc})
            return
        job = await self.scheduler.submit(request, body)
        t0 = time.monotonic()
        # Heartbeat-first: every request streams at least one
        # progress line before its result, so clients can tell a
        # working server from a hung one without timing games.
        while not job.done.is_set():
            await self._event(writer, {
                "event": "heartbeat", "state": job.state,
                "elapsed_s": round(time.monotonic() - t0, 3),
                "queue_depth": self.scheduler.queue_depth(),
                "attempts": job.attempts})
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(job.done.wait(),
                                       self.heartbeat_s)
        # The sealed bytes: identical for every subscriber of the job.
        writer.write(job.payload_bytes)
        await writer.drain()

    _handle_evaluate_many = _handle_evaluate

    async def _handle_explore(self, writer, body) -> None:
        """Run a sweep through the serving queue.

        Spec document::

            {"workload": "fib", "pipeline": "<template>",
             "points": [{...}, ...] | "grid": {"axis": [v, ...]},
             "variant": "base", "sim": {...}, "check": true,
             "objectives": ["time_us", "alms"]}
        """
        if not isinstance(body, dict):
            raise ProtocolError("explore needs a JSON spec body")
        try:
            spec = _ExploreSpec(body)
        except ReproError as exc:
            doc = error_document(exc)
            doc["family"] = "deterministic"
            await self._event(writer, {"event": "error", **doc})
            return
        t0 = time.monotonic()
        planned = plan_points(spec.workload, spec.params_list,
                              spec.template, spec.base_sim,
                              variant=spec.variant)
        jobs: List = []
        points: Dict[int, PointResult] = {}
        for row in planned:
            point: PointResult = row["_point"]
            points[row["index"]] = point
            if row["_plan_error"] is not None:
                point.error = row["_plan_error"]
                jobs.append(None)
                continue
            request = EvaluationRequest(
                workload=spec.workload, variant=spec.variant,
                passes=row["pass_spec"] or "",
                sim={k: v for k, v in row["sim"].items()
                     if v is not None},
                check=spec.check)
            jobs.append(await self.scheduler.submit(request))
        total = len(planned)
        pending = [j for j in jobs if j is not None]
        while any(not j.done.is_set() for j in pending):
            done_n = sum(j.done.is_set() for j in pending) \
                + (total - len(pending))
            await self._event(writer, {
                "event": "heartbeat", "state": "exploring",
                "done": done_n, "total": total,
                "elapsed_s": round(time.monotonic() - t0, 3),
                "queue_depth": self.scheduler.queue_depth()})
            waits = [asyncio.create_task(j.done.wait())
                     for j in pending if not j.done.is_set()]
            _, rest = await asyncio.wait(
                waits, timeout=self.heartbeat_s,
                return_when=asyncio.ALL_COMPLETED)
            for w in rest:
                w.cancel()
        for row, job in zip(planned, jobs):
            if job is None:
                continue
            _apply_response(points[row["index"]], job.response_doc,
                            row["sim"])
        result_points = [points[row["index"]] for row in planned]
        pareto = pareto_frontier(result_points, spec.objectives)
        report = {
            "workload": spec.workload, "variant": spec.variant,
            "template": spec.template if isinstance(spec.template,
                                                    str) else None,
            "objectives": list(spec.objectives),
            "points": [p.to_json() for p in result_points],
            "pareto": pareto,
            "wall_s": round(time.monotonic() - t0, 4),
            "scheduler": self.scheduler.snapshot(),
        }
        await self._event(writer, {"event": "result",
                                   "response": report})

    async def _handle_report(self, writer, _body) -> None:
        doc: Dict = {"scheduler": self.scheduler.snapshot(),
                     "protocol": PROTOCOL, "pid": os.getpid()}
        if telemetry.enabled():
            doc["metrics"] = telemetry.metrics().snapshot()
        await self._event(writer, {"event": "result", "response": doc})

    async def _handle_health(self, writer, _body) -> None:
        await self._event(writer, {
            "event": "result",
            "response": {"status": "ok", "pid": os.getpid(),
                         "uptime_s": self.scheduler.snapshot()
                         ["uptime_s"]}})

    async def _handle_shutdown(self, writer, _body) -> None:
        await self._event(writer, {"event": "result",
                                   "response": {"status":
                                                "shutting down"}})
        self._stop.set()


class _ExploreSpec:
    """Validated explore request body."""

    def __init__(self, body: Dict):
        known = {"workload", "pipeline", "points", "grid", "variant",
                 "sim", "check", "objectives"}
        unknown = set(body) - known
        if unknown:
            raise ReproError(
                f"unknown explore field(s): "
                f"{', '.join(sorted(unknown))}")
        self.workload = body.get("workload")
        if not self.workload:
            raise ReproError("explore spec needs a workload")
        self.template = body.get("pipeline") or ""
        self.variant = body.get("variant", "base")
        self.check = bool(body.get("check", True))
        self.objectives = list(body.get("objectives")
                               or ("time_us", "alms"))
        for objective in self.objectives:
            if objective not in METRICS:
                raise ReproError(
                    f"unknown objective {objective!r}; known: "
                    f"{', '.join(METRICS)}")
        if body.get("points"):
            self.params_list = [dict(p) for p in body["points"]]
        elif body.get("grid"):
            from ..dse.space import GridSpace
            self.params_list = [dict(p)
                                for p in GridSpace(body["grid"])]
        else:
            raise ReproError(
                "explore spec needs points=[...] or grid={...}")
        sim = dict(body.get("sim") or {})
        from ..api.requests import SIM_FIELDS
        unknown = set(sim) - set(SIM_FIELDS)
        if unknown:
            raise ReproError(
                f"unknown sim field(s): {', '.join(sorted(unknown))}")
        self.base_sim = sim


def _apply_response(point: PointResult, response: Optional[Dict],
                    sim: Dict) -> None:
    """Fill a PointResult from the serve response document."""
    if response is None:
        point.error = {"error": "ReproError",
                       "message": "no response (server shutdown?)",
                       "exit_code": 2, "family": "transient"}
        return
    meta = response.get("meta") or {}
    point.wall_s = float(meta.get("wall_s") or 0.0)
    point.key = response.get("request_key", "")
    if response.get("status") != "ok":
        point.error = response.get("error")
        return
    ev = response.get("evaluation") or {}
    point.status = "ok"
    point.cycles = ev.get("cycles")
    point.verified = ev.get("verified")
    point.synth = ev.get("synth")
    point.stats = None  # host-local; not on the wire by design


def start_in_thread(**kwargs) -> "ServerHandle":
    """Spin a daemon on a background thread (tests + CLI client
    round-trips); returns a handle with ``address`` and ``stop()``."""
    handle = ServerHandle(ServeServer(**kwargs))
    handle.start()
    return handle


class ServerHandle:
    def __init__(self, server: ServeServer):
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def address(self) -> str:
        return self.server.address

    def start(self) -> None:
        def _run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def _main():
                await self.server.start()
                self._started.set()
                await self.server.serve_until_stopped()

            try:
                loop.run_until_complete(_main())
            finally:
                with contextlib.suppress(Exception):
                    loop.close()

        self._thread = threading.Thread(target=_run,
                                        name="repro-serve",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(30):
            raise ReproError("serve daemon failed to start in 30s")

    def stop(self, timeout: float = 15.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)

"""HTTP-lite framing for the evaluation daemon.

The daemon speaks a deliberately small HTTP/1.0 subset over TCP or a
Unix socket — ``POST /v1/<verb>`` with a JSON body in, a ``200``
response streaming newline-delimited JSON (NDJSON) events out, then
``Connection: close``.  Real HTTP clients (``curl --no-buffer``) can
talk to it, but we implement only what the repo's client library
needs: no keep-alive, no chunked encoding, no content negotiation.

Event stream grammar (one JSON document per line):

``{"event": "hello", ...}``
    First line of every response: server identity and schema.
``{"event": "heartbeat", ...}``
    Progress while the request is queued/running (queue depth, state,
    elapsed seconds; ``explore`` adds done/total counts).
``{"event": "result", "response": {...}}``
    Terminal line: the :class:`~repro.api.EvaluationResponse` document
    (or verb-specific document) — exactly one per request.
``{"event": "error", ...}``
    Terminal line when the request never reached execution (bad verb,
    malformed body, shutdown race).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from ..errors import ReproError

#: Protocol identity sent in the hello event and checked by clients.
PROTOCOL = "repro.serve/1"

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 32 * 1024 * 1024

VERBS = ("evaluate", "evaluate_many", "explore", "report", "health",
         "shutdown")


class ProtocolError(ReproError):
    """Malformed request/response framing."""


def encode_request(path: str, doc: Optional[Dict]) -> bytes:
    """Serialize one client request (POST + JSON body)."""
    body = b"" if doc is None else json.dumps(
        doc, sort_keys=True).encode("utf-8")
    head = (f"POST {path} HTTP/1.0\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n").encode("ascii")
    return head + body


def response_header(status: int = 200, reason: str = "OK") -> bytes:
    """The streaming response preamble (headers only, body follows
    as NDJSON lines)."""
    return (f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: application/x-ndjson\r\n"
            f"Cache-Control: no-store\r\n"
            f"Connection: close\r\n"
            f"\r\n").encode("ascii")


def event_bytes(doc: Dict) -> bytes:
    """One NDJSON event line.  ``sort_keys`` keeps the serialization
    canonical — dedup subscribers literally receive the same bytes."""
    return json.dumps(doc, sort_keys=True).encode("utf-8") + b"\n"


def parse_event(line: bytes) -> Dict:
    try:
        doc = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable event line: {exc}")
    if not isinstance(doc, dict) or "event" not in doc:
        raise ProtocolError(f"event line without an event field: "
                            f"{str(doc)[:120]}")
    return doc


async def read_request(reader) -> Tuple[str, str, Optional[Dict]]:
    """Parse one inbound request from an asyncio stream.

    Returns ``(method, path, body_doc)``; raises
    :class:`ProtocolError` on malformed framing, oversized payloads,
    or undecodable JSON.  An immediately-closed connection (health
    probes, port scanners) surfaces as ``("", "", None)``.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrun
        partial = getattr(exc, "partial", b"")
        if not partial:
            return "", "", None
        raise ProtocolError(f"truncated request header "
                            f"({len(partial)} bytes)")
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request header too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) < 2:
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(f"request body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    doc: Optional[Dict] = None
    if body:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"undecodable request body: {exc}")
    return method, path, doc


def verb_of(path: str) -> str:
    """Map a request path to its serve verb (``/v1/evaluate`` ->
    ``evaluate``)."""
    clean = path.split("?", 1)[0].strip("/")
    parts = clean.split("/")
    if len(parts) == 2 and parts[0] == "v1" and parts[1] in VERBS:
        return parts[1]
    raise ProtocolError(
        f"unknown path {path!r}; known: "
        + ", ".join(f"/v1/{v}" for v in VERBS))

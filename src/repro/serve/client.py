"""Synchronous client for the evaluation daemon.

One blocking call per request — connect, POST, stream NDJSON events,
return the terminal document.  Connection-level failures (refused,
reset, mid-stream EOF) retry with :class:`~repro.dse.engine.RetryPolicy`
backoff: evaluation requests are idempotent (same canonical key, same
payload), so a re-send against a restarted daemon is always safe.
Heartbeat events invoke an optional callback so CLIs can show
liveness; they also reset the read timeout, so a long evaluation on a
healthy server is distinguished from a hung one.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Callable, Dict, Optional, Tuple

from ..dse.engine import RetryPolicy
from ..errors import ReproError
from ..api.requests import EvaluationRequest, EvaluationResponse
from .protocol import PROTOCOL, encode_request, parse_event

DEFAULT_TIMEOUT_S = 300.0
DEFAULT_CONNECT_TIMEOUT_S = 5.0


class ServeConnectionError(ReproError):
    """Could not reach the daemon / connection died mid-request.
    Transient by classification: the client retries these."""


class ServeTimeout(ReproError):
    """No event (not even a heartbeat) within the read timeout."""


def parse_address(text: str) -> Tuple[str, object]:
    """``host:port``, ``:port``, ``port`` or ``unix:/path`` ->
    (family, connect argument)."""
    text = (text or "").strip()
    if not text:
        raise ReproError("empty serve address")
    if text.startswith("unix:"):
        path = text[5:]
        if not path:
            raise ReproError("unix: address needs a socket path")
        return "unix", path
    host, _, port = text.rpartition(":")
    host = host or "127.0.0.1"
    try:
        return "tcp", (host, int(port))
    except ValueError:
        raise ReproError(
            f"bad serve address {text!r} (want host:port or "
            f"unix:/path)")


class ServeClient:
    """A handle on one daemon address (no persistent connection)."""

    def __init__(self, address: str, *,
                 timeout: float = DEFAULT_TIMEOUT_S,
                 connect_timeout: float = DEFAULT_CONNECT_TIMEOUT_S,
                 retry: Optional[RetryPolicy] = None,
                 on_heartbeat: Optional[Callable[[Dict], None]] = None):
        self.family, self.target = parse_address(address)
        self.address = address
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retry = retry or RetryPolicy(max_attempts=3,
                                          base_delay=0.2,
                                          max_delay=2.0)
        self.on_heartbeat = on_heartbeat

    # -- verbs -------------------------------------------------------------
    def evaluate(self, request: EvaluationRequest
                 ) -> EvaluationResponse:
        """Evaluate one request (scalar or batched) on the daemon."""
        doc = self._call(f"/v1/{request.kind}", request.to_json())
        return EvaluationResponse.from_json(doc)

    def explore(self, spec: Dict) -> Dict:
        """Run a sweep spec; returns the explore report document."""
        return self._call("/v1/explore", spec)

    def report(self) -> Dict:
        return self._call("/v1/report", {})

    def health(self) -> Dict:
        return self._call("/v1/health", {})

    def shutdown(self) -> Dict:
        # No retry: a dead server IS the goal state here.
        return self._call("/v1/shutdown", {}, retry=False)

    # -- transport ---------------------------------------------------------
    def _call(self, path: str, body: Dict, *,
              retry: bool = True) -> Dict:
        attempts = self.retry.max_attempts if retry else 1
        last: Optional[BaseException] = None
        for attempt in range(1, attempts + 1):
            try:
                return self._once(path, body)
            except ServeConnectionError as exc:
                last = exc
                if attempt < attempts:
                    time.sleep(self.retry.delay(attempt))
        raise ServeConnectionError(
            f"{last} (after {attempts} attempt(s) against "
            f"{self.address})")

    def _connect(self) -> socket.socket:
        try:
            if self.family == "unix":
                sock = socket.socket(socket.AF_UNIX,
                                     socket.SOCK_STREAM)
                sock.settimeout(self.connect_timeout)
                sock.connect(self.target)
            else:
                sock = socket.create_connection(
                    self.target, timeout=self.connect_timeout)
        except OSError as exc:
            raise ServeConnectionError(
                f"cannot connect to {self.address}: {exc}")
        sock.settimeout(self.timeout)
        return sock

    def _once(self, path: str, body: Dict) -> Dict:
        sock = self._connect()
        try:
            try:
                sock.sendall(encode_request(path, body))
            except OSError as exc:
                raise ServeConnectionError(
                    f"send to {self.address} failed: {exc}")
            fh = sock.makefile("rb")
            self._read_status(fh)
            return self._read_events(fh)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _read_status(self, fh) -> None:
        line = self._readline(fh)
        parts = line.decode("latin-1", "replace").split()
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ServeConnectionError(
                f"not a serve daemon at {self.address}: "
                f"{line[:80]!r}")
        while True:
            header = self._readline(fh)
            if header in (b"\r\n", b"\n", b""):
                break

    def _read_events(self, fh) -> Dict:
        saw_hello = False
        while True:
            line = self._readline(fh).strip()
            if not line:
                raise ServeConnectionError(
                    f"{self.address} closed the stream before a "
                    f"result")
            event = parse_event(line)
            kind = event.get("event")
            if kind == "hello":
                if event.get("protocol") != PROTOCOL:
                    raise ReproError(
                        f"protocol skew: server speaks "
                        f"{event.get('protocol')!r}, client "
                        f"{PROTOCOL!r}")
                saw_hello = True
            elif kind == "heartbeat":
                if self.on_heartbeat is not None:
                    self.on_heartbeat(event)
            elif kind == "result":
                return event["response"]
            elif kind == "error":
                doc = {k: v for k, v in event.items()
                       if k != "event"}
                raise ReproError(
                    f"server rejected the request: "
                    f"{doc.get('error')}: {doc.get('message')}"
                    + ("" if saw_hello else " (no hello)"))
            # Unknown event kinds are skipped: additive protocol
            # evolution must not break old clients.

    def _readline(self, fh) -> bytes:
        try:
            return fh.readline()
        except socket.timeout:
            raise ServeTimeout(
                f"no event from {self.address} within "
                f"{self.timeout:g}s (not even a heartbeat)")
        except OSError as exc:
            raise ServeConnectionError(
                f"read from {self.address} failed: {exc}")


def response_payload_bytes(response_doc: Dict) -> bytes:
    """Canonical identity bytes of a response document (minus
    ``meta``): the serialization the dedup/batching tests and the CI
    smoke compare bit-for-bit."""
    payload = {k: v for k, v in response_doc.items() if k != "meta"}
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")

"""Workload definition and registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..util.rng import rng_for
from ..frontend import compile_minic
from ..frontend.interp import Interpreter, Memory
from ..frontend.ir import Module

InitFn = Callable[[Memory], None]


@dataclass
class Workload:
    """One benchmark program with its inputs and golden data."""

    name: str
    category: str          # polybench | cilk | tensorflow | inhouse
    source: str            # MiniC text (the baseline/scalar variant)
    args: Tuple = ()
    init: Optional[InitFn] = None
    check_arrays: Sequence[str] = ()
    fp: bool = False       # Table 2 'F' marker
    tensor: bool = False   # Table 2 '[T]' marker
    #: Alternate sources, e.g. {"tensor": <uses tensor intrinsics>}.
    variants: Dict[str, str] = field(default_factory=dict)
    #: Per-variant argument overrides (defaults to ``args``).
    variant_args: Dict[str, Tuple] = field(default_factory=dict)
    notes: str = ""
    _modules: Dict[str, Module] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def module(self, variant: str = "base") -> Module:
        if variant not in self._modules:
            src = self.source if variant == "base" \
                else self.variants[variant]
            suffix = "" if variant == "base" else f"_{variant}"
            self._modules[variant] = compile_minic(
                src, filename=f"{self.name}{suffix}.mc")
        return self._modules[variant]

    def fresh_memory(self, variant: str = "base") -> Memory:
        mem = Memory(self.module(variant))
        if self.init is not None:
            self.init(mem)
        return mem

    def args_for(self, variant: str = "base") -> Tuple:
        return self.variant_args.get(variant, self.args)

    def golden(self, variant: str = "base") -> Memory:
        """Reference memory image after running the interpreter."""
        mem = self.fresh_memory(variant)
        Interpreter(self.module(variant), mem).run(*self.args_for(variant))
        return mem

    def verify(self, memory: Memory, variant: str = "base") -> None:
        """Raise when ``memory`` disagrees with the golden run."""
        gold = self.golden(variant)
        for array in (self.check_arrays
                      or list(self.module(variant).globals)):
            got = memory.get_array(array)
            want = gold.get_array(array)
            if not _values_close(got, want):
                raise WorkloadError(
                    f"{self.name}: array {array!r} mismatch "
                    f"(got {got[:4]}..., want {want[:4]}...)")

    def interp_stats(self, variant: str = "base"):
        """Dynamic statistics from a golden run (for CPU/HLS models)."""
        mem = self.fresh_memory(variant)
        interp = Interpreter(self.module(variant), mem)
        interp.run(*self.args_for(variant))
        return interp.stats


def _values_close(a, b, tol: float = 1e-6) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if isinstance(x, tuple):
            if not _values_close(x, y, tol):
                return False
        elif isinstance(x, float) or isinstance(y, float):
            scale = max(abs(x), abs(y), 1.0)
            if abs(x - y) > tol * scale:
                return False
        elif x != y:
            return False
    return True


WORKLOADS: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in WORKLOADS:
        raise WorkloadError(f"duplicate workload {workload.name}")
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")


def workload_names(category: Optional[str] = None) -> List[str]:
    return [n for n, w in WORKLOADS.items()
            if category is None or w.category == category]


# Golden-data generators.  ``rng_for(seed)`` with no stream is exactly
# ``random.Random(seed)``, so the sequences below are unchanged from
# the pre-centralization era (golden data is stable across releases).

def seeded_floats(n: int, seed: int, lo: float = -1.0,
                  hi: float = 1.0) -> List[float]:
    rng = rng_for(seed)
    return [round(rng.uniform(lo, hi), 4) for _ in range(n)]


def seeded_ints(n: int, seed: int, lo: int = 0, hi: int = 100) -> List[int]:
    rng = rng_for(seed)
    return [rng.randint(lo, hi) for _ in range(n)]

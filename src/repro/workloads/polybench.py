"""Polybench / Machsuite floating-point workloads (paper Table 2).

GEMM, COVAR, FFT, SPMV, 2MM, 3MM — sized for cycle-level simulation.
"""

from __future__ import annotations

import math

from .base import Workload, register, seeded_floats, seeded_ints

# ---------------------------------------------------------------------------
# GEMM: C = A x B  (N x N, f32)
# ---------------------------------------------------------------------------

GEMM_N = 8

GEMM_SRC = f"""
array A: f32[{GEMM_N * GEMM_N}];
array B: f32[{GEMM_N * GEMM_N}];
array C: f32[{GEMM_N * GEMM_N}];

func main(n: i32) {{
  for (i = 0; i < n; i = i + 1) {{
    for (j = 0; j < n; j = j + 1) {{
      var sum: f32 = 0.0;
      for (k = 0; k < n; k = k + 1) {{
        sum = sum + A[i * n + k] * B[k * n + j];
      }}
      C[i * n + j] = sum;
    }}
  }}
}}
"""


def _init_gemm(mem):
    mem.set_array("A", seeded_floats(GEMM_N * GEMM_N, 11))
    mem.set_array("B", seeded_floats(GEMM_N * GEMM_N, 12))


register(Workload(
    name="gemm", category="polybench", source=GEMM_SRC,
    args=(GEMM_N,), init=_init_gemm, check_arrays=["C"], fp=True,
    notes="dense matrix multiply, triple loop nest"))


# ---------------------------------------------------------------------------
# COVAR: covariance matrix (Polybench 'covariance')
# ---------------------------------------------------------------------------

COVAR_N = 8   # observations
COVAR_M = 6   # variables

COVAR_SRC = f"""
array data: f32[{COVAR_N * COVAR_M}];
array mean: f32[{COVAR_M}];
array cov: f32[{COVAR_M * COVAR_M}];

func main(n: i32, m: i32) {{
  for (j = 0; j < m; j = j + 1) {{
    var s: f32 = 0.0;
    for (i = 0; i < n; i = i + 1) {{
      s = s + data[i * m + j];
    }}
    mean[j] = s / f32(n);
  }}
  for (i2 = 0; i2 < n; i2 = i2 + 1) {{
    for (j2 = 0; j2 < m; j2 = j2 + 1) {{
      data[i2 * m + j2] = data[i2 * m + j2] - mean[j2];
    }}
  }}
  for (j3 = 0; j3 < m; j3 = j3 + 1) {{
    for (j4 = j3; j4 < m; j4 = j4 + 1) {{
      var acc: f32 = 0.0;
      for (i3 = 0; i3 < n; i3 = i3 + 1) {{
        acc = acc + data[i3 * m + j3] * data[i3 * m + j4];
      }}
      acc = acc / (f32(n) - 1.0);
      cov[j3 * m + j4] = acc;
      cov[j4 * m + j3] = acc;
    }}
  }}
}}
"""


def _init_covar(mem):
    mem.set_array("data", seeded_floats(COVAR_N * COVAR_M, 21, 0.0, 4.0))


register(Workload(
    name="covar", category="polybench", source=COVAR_SRC,
    args=(COVAR_N, COVAR_M), init=_init_covar,
    check_arrays=["cov", "mean"], fp=True,
    notes="mean, center, triangular covariance accumulation"))


# ---------------------------------------------------------------------------
# FFT: iterative radix-2, in-place, size 16 (Machsuite 'fft')
# ---------------------------------------------------------------------------

FFT_N = 64
FFT_STAGES = 6

FFT_SRC = f"""
array re: f32[{FFT_N}];
array im: f32[{FFT_N}];
array wr: f32[{FFT_N // 2}];
array wi: f32[{FFT_N // 2}];

func main(n: i32, stages: i32) {{
  var nhalf: i32 = n / 2;
  for (s = 1; s < stages + 1; s = s + 1) {{
    var m: i32 = 1 << s;
    var half: i32 = m >> 1;
    var stride: i32 = n / m;
    // One flat butterfly loop per stage: the group/offset split is
    // shift/mask arithmetic (long chains of cheap fusable ops).
    for (idx = 0; idx < nhalf; idx = idx + 1) {{
      var j: i32 = idx & (half - 1);
      var base: i32 = (idx >> (s - 1)) << s;
      var lo: i32 = base + j;
      var hi: i32 = lo + half;
      var tw_r: f32 = wr[j * stride];
      var tw_i: f32 = wi[j * stride];
      var xr: f32 = re[hi];
      var xi: f32 = im[hi];
      var tr: f32 = tw_r * xr - tw_i * xi;
      var ti: f32 = tw_r * xi + tw_i * xr;
      var ur: f32 = re[lo];
      var ui: f32 = im[lo];
      re[lo] = ur + tr;
      im[lo] = ui + ti;
      re[hi] = ur - tr;
      im[hi] = ui - ti;
    }}
  }}
}}
"""


def _init_fft(mem):
    # Bit-reversed input order so the DIT butterflies produce the DFT.
    values = seeded_floats(FFT_N, 31)
    bits = FFT_STAGES

    def rev(i):
        out = 0
        for b in range(bits):
            out = (out << 1) | ((i >> b) & 1)
        return out

    mem.set_array("re", [values[rev(i)] for i in range(FFT_N)])
    mem.set_array("im", [0.0] * FFT_N)
    mem.set_array("wr", [math.cos(-2 * math.pi * k / FFT_N)
                         for k in range(FFT_N // 2)])
    mem.set_array("wi", [math.sin(-2 * math.pi * k / FFT_N)
                         for k in range(FFT_N // 2)])


register(Workload(
    name="fft", category="polybench", source=FFT_SRC,
    args=(FFT_N, FFT_STAGES), init=_init_fft,
    check_arrays=["re", "im"], fp=True,
    notes="iterative radix-2 DIT, in-place (stages serialize)"))


# ---------------------------------------------------------------------------
# SPMV: CSR sparse matrix x dense vector (Machsuite 'spmv')
# ---------------------------------------------------------------------------

SPMV_ROWS = 16
SPMV_NNZ_PER_ROW = 4
SPMV_NNZ = SPMV_ROWS * SPMV_NNZ_PER_ROW

SPMV_SRC = f"""
array vals: f32[{SPMV_NNZ}];
array cols: i32[{SPMV_NNZ}];
array rowptr: i32[{SPMV_ROWS + 1}];
array x: f32[{SPMV_ROWS}];
array y: f32[{SPMV_ROWS}];

func main(rows: i32) {{
  for (i = 0; i < rows; i = i + 1) {{
    var lo: i32 = rowptr[i];
    var hi: i32 = rowptr[i + 1];
    var sum: f32 = 0.0;
    for (k = lo; k < hi; k = k + 1) {{
      sum = sum + vals[k] * x[cols[k]];
    }}
    y[i] = sum;
  }}
}}
"""


def _init_spmv(mem):
    mem.set_array("vals", seeded_floats(SPMV_NNZ, 41))
    cols = []
    for row in range(SPMV_ROWS):
        base = seeded_ints(SPMV_NNZ_PER_ROW, 43 + row, 0, SPMV_ROWS - 1)
        cols.extend(sorted(set(base))[:SPMV_NNZ_PER_ROW]
                    + [0] * (SPMV_NNZ_PER_ROW - len(set(base))))
    mem.set_array("cols", cols[:SPMV_NNZ])
    mem.set_array("rowptr", [r * SPMV_NNZ_PER_ROW
                             for r in range(SPMV_ROWS + 1)])
    mem.set_array("x", seeded_floats(SPMV_ROWS, 47))


register(Workload(
    name="spmv", category="polybench", source=SPMV_SRC,
    args=(SPMV_ROWS,), init=_init_spmv, check_arrays=["y"], fp=True,
    notes="CSR, data-dependent inner trip counts, gather on x"))


# ---------------------------------------------------------------------------
# 2MM: E = (A x B) x C        3MM: G = (A x B) x (C x D)
# ---------------------------------------------------------------------------

MM_N = 6


def _matmul_loop(dst, a, b, suffix):
    return f"""
  for (i{suffix} = 0; i{suffix} < n; i{suffix} = i{suffix} + 1) {{
    for (j{suffix} = 0; j{suffix} < n; j{suffix} = j{suffix} + 1) {{
      var sum{suffix}: f32 = 0.0;
      for (k{suffix} = 0; k{suffix} < n; k{suffix} = k{suffix} + 1) {{
        sum{suffix} = sum{suffix} +
            {a}[i{suffix} * n + k{suffix}] * {b}[k{suffix} * n + j{suffix}];
      }}
      {dst}[i{suffix} * n + j{suffix}] = sum{suffix};
    }}
  }}
"""


MM2_SRC = f"""
array A: f32[{MM_N * MM_N}];
array B: f32[{MM_N * MM_N}];
array C: f32[{MM_N * MM_N}];
array D: f32[{MM_N * MM_N}];
array E: f32[{MM_N * MM_N}];

func main(n: i32) {{
{_matmul_loop("D", "A", "B", "0")}
{_matmul_loop("E", "D", "C", "1")}
}}
"""

MM3_SRC = f"""
array A: f32[{MM_N * MM_N}];
array B: f32[{MM_N * MM_N}];
array C: f32[{MM_N * MM_N}];
array D: f32[{MM_N * MM_N}];
array T1: f32[{MM_N * MM_N}];
array T2: f32[{MM_N * MM_N}];
array G: f32[{MM_N * MM_N}];

func main(n: i32) {{
{_matmul_loop("T1", "A", "B", "0")}
{_matmul_loop("T2", "C", "D", "1")}
{_matmul_loop("G", "T1", "T2", "2")}
}}
"""


def _init_2mm(mem):
    for name, seed in (("A", 51), ("B", 52), ("C", 53)):
        mem.set_array(name, seeded_floats(MM_N * MM_N, seed))


def _init_3mm(mem):
    for name, seed in (("A", 61), ("B", 62), ("C", 63), ("D", 64)):
        mem.set_array(name, seeded_floats(MM_N * MM_N, seed))


register(Workload(
    name="2mm", category="polybench", source=MM2_SRC,
    args=(MM_N,), init=_init_2mm, check_arrays=["E"], fp=True,
    notes="two dependent matmuls (loop-level pipeline parallelism)"))

register(Workload(
    name="3mm", category="polybench", source=MM3_SRC,
    args=(MM_N,), init=_init_3mm, check_arrays=["G"], fp=True,
    notes="three matmuls; the first two are independent"))

"""Cilk workloads (paper Table 2): FIB, M-SORT, SAXPY, STENCIL,
IMG-SCALE.  These exercise task-level parallelism: recursion through
the task queue, parallel_for via detach/reattach, and sync barriers."""

from __future__ import annotations

from .base import Workload, register, seeded_floats, seeded_ints

# ---------------------------------------------------------------------------
# FIB: doubly-recursive Fibonacci (task-queue recursion)
# ---------------------------------------------------------------------------

FIB_N = 12

FIB_SRC = """
array res: i32[1];

func fib(n: i32) -> i32 {
  if (n < 2) { return n; }
  var a: i32 = fib(n - 1);
  var b: i32 = fib(n - 2);
  return a + b;
}

func main(n: i32) {
  res[0] = fib(n);
}
"""

register(Workload(
    name="fib", category="cilk", source=FIB_SRC, args=(FIB_N,),
    check_arrays=["res"],
    notes="recursive task spawning; both calls issue concurrently "
          "from the dataflow"))


# ---------------------------------------------------------------------------
# M-SORT: recursive merge sort with spawned halves + sync
# ---------------------------------------------------------------------------

MSORT_N = 32

MSORT_SRC = f"""
array arr: i32[{MSORT_N}];
array tmp: i32[{MSORT_N}];

func msort(lo: i32, n: i32) {{
  if (n < 2) {{ return; }}
  var half: i32 = n / 2;
  spawn msort(lo, half);
  spawn msort(lo + half, n - half);
  sync;
  var i: i32 = lo;
  var j: i32 = lo + half;
  for (k = 0; k < n; k = k + 1) {{
    var takeleft: i32 = 0;
    if (j >= lo + n) {{
      takeleft = 1;
    }} else {{
      if (i < lo + half) {{
        if (arr[i] <= arr[j]) {{
          takeleft = 1;
        }}
      }}
    }}
    if (takeleft == 1) {{
      tmp[lo + k] = arr[i];
      i = i + 1;
    }} else {{
      tmp[lo + k] = arr[j];
      j = j + 1;
    }}
  }}
  for (k2 = 0; k2 < n; k2 = k2 + 1) {{
    arr[lo + k2] = tmp[lo + k2];
  }}
}}

func main(n: i32) {{
  msort(0, n);
}}
"""


def _init_msort(mem):
    mem.set_array("arr", seeded_ints(MSORT_N, 71, 0, 999))


register(Workload(
    name="msort", category="cilk", source=MSORT_SRC, args=(MSORT_N,),
    init=_init_msort, check_arrays=["arr"],
    notes="spawned halves + sync barrier + branchy merge loop"))


# ---------------------------------------------------------------------------
# SAXPY: parallel_for y = a*x + y
# ---------------------------------------------------------------------------

SAXPY_N = 256

SAXPY_SRC = f"""
array x: f32[{SAXPY_N}];
array y: f32[{SAXPY_N}];

func main(n: i32, a: f32) {{
  parallel_for (i = 0; i < n; i = i + 1) {{
    y[i] = a * x[i] + y[i];
  }}
}}
"""


def _init_saxpy(mem):
    mem.set_array("x", seeded_floats(SAXPY_N, 81))
    mem.set_array("y", seeded_floats(SAXPY_N, 82))


register(Workload(
    name="saxpy", category="cilk", source=SAXPY_SRC,
    args=(SAXPY_N, 2.5), init=_init_saxpy, check_arrays=["y"], fp=True,
    notes="memory-bound parallel loop (tiling saturates quickly)"))


# ---------------------------------------------------------------------------
# STENCIL: 2D 5-point Jacobi step, parallel over rows
# ---------------------------------------------------------------------------

STENCIL_N = 12

STENCIL_SRC = f"""
array grid_in: f32[{STENCIL_N * STENCIL_N}];
array grid_out: f32[{STENCIL_N * STENCIL_N}];

func main(n: i32) {{
  parallel_for (r = 1; r < n - 1; r = r + 1) {{
    for (c = 1; c < n - 1; c = c + 1) {{
      var center: f32 = grid_in[r * n + c];
      var north: f32 = grid_in[(r - 1) * n + c];
      var south: f32 = grid_in[(r + 1) * n + c];
      var west: f32 = grid_in[r * n + c - 1];
      var east: f32 = grid_in[r * n + c + 1];
      grid_out[r * n + c] =
          0.2 * (center + north + south + west + east);
    }}
  }}
}}
"""


def _init_stencil(mem):
    mem.set_array("grid_in",
                  seeded_floats(STENCIL_N * STENCIL_N, 91, 0.0, 10.0))


register(Workload(
    name="stencil", category="cilk", source=STENCIL_SRC,
    args=(STENCIL_N,), init=_init_stencil, check_arrays=["grid_out"],
    fp=True, notes="compute-dense rows; scales to 8 tiles in the paper"))


# ---------------------------------------------------------------------------
# IMG-SCALE: 2x bilinear image upscale (fixed-point), parallel over rows
# ---------------------------------------------------------------------------

IMG_W = 8     # input is IMG_W x IMG_W, output 2x
IMG_OUT = IMG_W * 2

IMG_SRC = f"""
array src: i32[{IMG_W * IMG_W}];
array dst: i32[{IMG_OUT * IMG_OUT}];

func main(w: i32, ow: i32) {{
  parallel_for (y = 0; y < ow; y = y + 1) {{
    for (x = 0; x < ow; x = x + 1) {{
      var sy: i32 = y / 2;
      var sx: i32 = x / 2;
      var sy1: i32 = sy + 1;
      var sx1: i32 = sx + 1;
      if (sy1 >= w) {{ sy1 = w - 1; }}
      if (sx1 >= w) {{ sx1 = w - 1; }}
      var p00: i32 = src[sy * w + sx];
      var p01: i32 = src[sy * w + sx1];
      var p10: i32 = src[sy1 * w + sx];
      var p11: i32 = src[sy1 * w + sx1];
      var fy: i32 = y - sy * 2;
      var fx: i32 = x - sx * 2;
      var top: i32 = p00 * (2 - fx) + p01 * fx;
      var bot: i32 = p10 * (2 - fx) + p11 * fx;
      dst[y * ow + x] = (top * (2 - fy) + bot * fy) / 4;
    }}
  }}
}}
"""


def _init_img(mem):
    mem.set_array("src", seeded_ints(IMG_W * IMG_W, 95, 0, 255))


register(Workload(
    name="img_scale", category="cilk", source=IMG_SRC,
    args=(IMG_W, IMG_OUT), init=_init_img, check_arrays=["dst"],
    notes="bilinear 2x upscale, integer arithmetic, parallel rows"))

"""Tensorflow workloads (paper Table 2): CONV, DENSE8, DENSE16,
SOFTM8, SOFTM16 — small inference kernels as the paper's LeFlow-style
Tensorflow front-end would emit them."""

from __future__ import annotations

import math

from .base import Workload, register, seeded_floats

# ---------------------------------------------------------------------------
# CONV: 2D valid convolution, 3x3 kernel
# ---------------------------------------------------------------------------

CONV_IN = 10
CONV_K = 3
CONV_OUT = CONV_IN - CONV_K + 1

CONV_SRC = f"""
array image: f32[{CONV_IN * CONV_IN}];
array kernel: f32[{CONV_K * CONV_K}];
array feat: f32[{CONV_OUT * CONV_OUT}];

func main(n: i32, k: i32, m: i32) {{
  for (r = 0; r < m; r = r + 1) {{
    for (c = 0; c < m; c = c + 1) {{
      var acc: f32 = 0.0;
      for (kr = 0; kr < k; kr = kr + 1) {{
        for (kc = 0; kc < k; kc = kc + 1) {{
          acc = acc + image[(r + kr) * n + c + kc] * kernel[kr * k + kc];
        }}
      }}
      feat[r * m + c] = acc;
    }}
  }}
}}
"""


def _init_conv(mem):
    mem.set_array("image", seeded_floats(CONV_IN * CONV_IN, 101))
    mem.set_array("kernel", seeded_floats(CONV_K * CONV_K, 102))


register(Workload(
    name="conv", category="tensorflow", source=CONV_SRC,
    args=(CONV_IN, CONV_K, CONV_OUT), init=_init_conv,
    check_arrays=["feat"], fp=True,
    notes="4-deep loop nest, sliding-window reuse"))


# ---------------------------------------------------------------------------
# DENSE: fully connected layer  out = relu(W x in + b)
# ---------------------------------------------------------------------------

def _dense_src(n: int) -> str:
    return f"""
array W: f32[{n * n}];
array inp: f32[{n}];
array bias: f32[{n}];
array outp: f32[{n}];

func main(n: i32) {{
  for (i = 0; i < n; i = i + 1) {{
    var acc: f32 = bias[i];
    for (j = 0; j < n; j = j + 1) {{
      acc = acc + W[i * n + j] * inp[j];
    }}
    var r: f32 = 0.0;
    if (acc > 0.0) {{ r = acc; }}
    outp[i] = r;
  }}
}}
"""


def _init_dense(n, seed):
    def init(mem):
        mem.set_array("W", seeded_floats(n * n, seed))
        mem.set_array("inp", seeded_floats(n, seed + 1))
        mem.set_array("bias", seeded_floats(n, seed + 2))
    return init


register(Workload(
    name="dense8", category="tensorflow", source=_dense_src(8),
    args=(8,), init=_init_dense(8, 111), check_arrays=["outp"],
    fp=True, notes="8-wide fully connected layer + ReLU"))

register(Workload(
    name="dense16", category="tensorflow", source=_dense_src(16),
    args=(16,), init=_init_dense(16, 121), check_arrays=["outp"],
    fp=True, notes="16-wide fully connected layer + ReLU"))


# ---------------------------------------------------------------------------
# SOFTM: numerically-stable softmax
# ---------------------------------------------------------------------------

def _softmax_src(n: int) -> str:
    return f"""
array xs: f32[{n}];
array probs: f32[{n}];

func main(n: i32) {{
  var mx: f32 = xs[0];
  for (i = 1; i < n; i = i + 1) {{
    var v: f32 = xs[i];
    if (v > mx) {{ mx = v; }}
  }}
  var denom: f32 = 0.0;
  for (j = 0; j < n; j = j + 1) {{
    var e: f32 = exp(xs[j] - mx);
    probs[j] = e;
    denom = denom + e;
  }}
  for (k = 0; k < n; k = k + 1) {{
    probs[k] = probs[k] / denom;
  }}
}}
"""


def _init_softmax(n, seed):
    def init(mem):
        mem.set_array("xs", seeded_floats(n, seed, -3.0, 3.0))
    return init


register(Workload(
    name="softm8", category="tensorflow", source=_softmax_src(8),
    args=(8,), init=_init_softmax(8, 131), check_arrays=["probs"],
    fp=True, notes="max-reduce, exp, sum-reduce, normalize"))

register(Workload(
    name="softm16", category="tensorflow", source=_softmax_src(16),
    args=(16,), init=_init_softmax(16, 141), check_arrays=["probs"],
    fp=True, notes="16-wide softmax"))

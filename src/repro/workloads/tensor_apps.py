"""In-house tensor workloads (paper Table 2): RELU[T], 2MM[T], CONV[T].

Each has a scalar baseline and a Tensor2D implementation computing the
*same values* over the same tile-major memory layout, so the Figure 15
comparison (higher-order tensor ops vs scalar pipeline) is apples to
apples.  RELU[T]'s tensor form is also reachable automatically from the
scalar form via the TensorOps pass.
"""

from __future__ import annotations

from .base import Workload, register, seeded_floats

# ---------------------------------------------------------------------------
# RELU[T]: elementwise ReLU over a tile-sized stream
# ---------------------------------------------------------------------------

RELU_N = 256  # scalar elements (= 64 2x2 tiles)

RELU_SCALAR_SRC = f"""
array a: f32[{RELU_N}];
array b: f32[{RELU_N}];

func main(n: i32) {{
  for (i = 0; i < n; i = i + 1) {{
    var v: f32 = a[i];
    var r: f32 = 0.0;
    if (v > 0.0) {{ r = v; }}
    b[i] = r;
  }}
}}
"""

RELU_TENSOR_SRC = f"""
array a: tensor<2x2xf32>[{RELU_N // 4}];
array b: tensor<2x2xf32>[{RELU_N // 4}];

func main(nt: i32) {{
  for (i = 0; i < nt; i = i + 1) {{
    b[i] = trelu(a[i]);
  }}
}}
"""


def _init_relu(mem):
    values = seeded_floats(RELU_N, 151, -2.0, 2.0)
    if "a" in mem.module.globals and \
            mem.module.globals["a"].elem.is_tensor:
        mem.set_array("a", [tuple(values[i:i + 4])
                            for i in range(0, RELU_N, 4)])
    else:
        mem.set_array("a", values)


register(Workload(
    name="relu_t", category="inhouse", source=RELU_SCALAR_SRC,
    args=(RELU_N,), init=_init_relu, check_arrays=["b"], fp=True,
    tensor=True,
    variants={"tensor": RELU_TENSOR_SRC},
    variant_args={"tensor": (RELU_N // 4,)},
    notes="tensor variant takes nt = n/4 as its argument"))


# ---------------------------------------------------------------------------
# 2MM[T]: blocked matrix multiply over 2x2 tiles (paper Figure 13)
# ---------------------------------------------------------------------------

MMT_T = 3          # T x T tiles = 6x6 elements
MMT_TILES = MMT_T * MMT_T

MMT_SCALAR_SRC = f"""
array A: f32[{MMT_TILES * 4}];
array B: f32[{MMT_TILES * 4}];
array C: f32[{MMT_TILES * 4}];

func main(t: i32) {{
  for (i = 0; i < t; i = i + 1) {{
    for (j = 0; j < t; j = j + 1) {{
      for (r = 0; r < 2; r = r + 1) {{
        for (c = 0; c < 2; c = c + 1) {{
          var acc: f32 = 0.0;
          for (k = 0; k < t; k = k + 1) {{
            for (kk = 0; kk < 2; kk = kk + 1) {{
              acc = acc + A[(i * t + k) * 4 + r * 2 + kk]
                        * B[(k * t + j) * 4 + kk * 2 + c];
            }}
          }}
          C[(i * t + j) * 4 + r * 2 + c] = acc;
        }}
      }}
    }}
  }}
}}
"""

MMT_TENSOR_SRC = f"""
array A: tensor<2x2xf32>[{MMT_TILES}];
array B: tensor<2x2xf32>[{MMT_TILES}];
array C: tensor<2x2xf32>[{MMT_TILES}];

func main(t: i32) {{
  for (i = 0; i < t; i = i + 1) {{
    for (j = 0; j < t; j = j + 1) {{
      var acc: tensor<2x2xf32> = C[i * t + j];
      for (k = 0; k < t; k = k + 1) {{
        acc = acc + A[i * t + k] * B[k * t + j];
      }}
      C[i * t + j] = acc;
    }}
  }}
}}
"""


def _init_mmt(mem):
    a = seeded_floats(MMT_TILES * 4, 161)
    b = seeded_floats(MMT_TILES * 4, 162)
    if mem.module.globals["A"].elem.is_tensor:
        mem.set_array("A", [tuple(a[i:i + 4])
                            for i in range(0, len(a), 4)])
        mem.set_array("B", [tuple(b[i:i + 4])
                            for i in range(0, len(b), 4)])
    else:
        mem.set_array("A", a)
        mem.set_array("B", b)


register(Workload(
    name="2mm_t", category="inhouse", source=MMT_SCALAR_SRC,
    args=(MMT_T,), init=_init_mmt, check_arrays=["C"], fp=True,
    tensor=True, variants={"tensor": MMT_TENSOR_SRC},
    notes="tile-blocked matmul; tensor variant is paper Figure 13"))


# ---------------------------------------------------------------------------
# CONV[T]: 1D convolution over a stream of 2x2 tiles, 3 weight tiles
# (the paper's introductory 1D-convolution example, tiled)
# ---------------------------------------------------------------------------

CONVT_N = 16  # tiles

CONVT_SCALAR_SRC = f"""
array xs: f32[{CONVT_N * 4}];
array wt: f32[12];
array ys: f32[{CONVT_N * 4}];

func main(n: i32) {{
  for (i = 1; i < n - 1; i = i + 1) {{
    for (r = 0; r < 2; r = r + 1) {{
      for (c = 0; c < 2; c = c + 1) {{
        var acc: f32 = 0.0;
        for (t = 0; t < 3; t = t + 1) {{
          for (k = 0; k < 2; k = k + 1) {{
            acc = acc + wt[t * 4 + r * 2 + k]
                      * xs[(i + t - 1) * 4 + k * 2 + c];
          }}
        }}
        var rr: f32 = 0.0;
        if (acc > 0.0) {{ rr = acc; }}
        ys[i * 4 + r * 2 + c] = rr;
      }}
    }}
  }}
}}
"""

CONVT_TENSOR_SRC = f"""
array xs: tensor<2x2xf32>[{CONVT_N}];
array wt: tensor<2x2xf32>[3];
array ys: tensor<2x2xf32>[{CONVT_N}];

func main(n: i32) {{
  for (i = 1; i < n - 1; i = i + 1) {{
    ys[i] = trelu(wt[0] * xs[i - 1] + wt[1] * xs[i] + wt[2] * xs[i + 1]);
  }}
}}
"""


def _init_convt(mem):
    x = seeded_floats(CONVT_N * 4, 171)
    w = seeded_floats(12, 172)
    if mem.module.globals["xs"].elem.is_tensor:
        mem.set_array("xs", [tuple(x[i:i + 4])
                             for i in range(0, len(x), 4)])
        mem.set_array("wt", [tuple(w[i:i + 4])
                             for i in range(0, len(w), 4)])
    else:
        mem.set_array("xs", x)
        mem.set_array("wt", w)


register(Workload(
    name="conv_t", category="inhouse", source=CONVT_SCALAR_SRC,
    args=(CONVT_N,), init=_init_convt, check_arrays=["ys"], fp=True,
    tensor=True, variants={"tensor": CONVT_TENSOR_SRC},
    notes="1D tile convolution (paper Figure 2's motivating kernel)"))

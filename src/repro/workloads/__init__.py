"""The paper's benchmark suite (Table 2) as MiniC programs.

Four families, mirroring the paper's grouping:

* Polybench/Machsuite (floating point): GEMM, COVAR, FFT, SPMV, 2MM, 3MM
* Cilk: FIB, M-SORT, SAXPY, STENCIL, IMG-SCALE
* Tensorflow: CONV, DENSE8, DENSE16, SOFTM8, SOFTM16
* In-house tensor: RELU[T], 2MM[T], CONV[T]

Every workload carries its inputs, golden check, and metadata; sizes
are scaled to cycle-accurate-simulation budgets (the paper's trends are
shape properties, not size properties).
"""

from .base import Workload, get_workload, workload_names  # noqa: F401
from . import polybench  # noqa: F401
from . import cilk_apps  # noqa: F401
from . import tensorflow_apps  # noqa: F401
from . import tensor_apps  # noqa: F401
from .base import WORKLOADS  # noqa: F401

"""Replayable failure bundles for the LI-conformance fuzzer.

A bundle is one directory holding everything needed to re-run a failed
fuzz case offline, long after the fuzz run that produced it:

``manifest.json``
    Schema, workload/variant/pass stack, fault mode, the minimized
    fault categories, and the replay command.
``fault_plan.json``
    The (minimized) :class:`repro.sim.faults.FaultPlan` — knobs + seed
    only; every per-site decision re-derives from stable hashes.
``original_plan.json``
    The un-minimized plan as generated, in case minimization masked
    an interaction.
``circuit.json``
    The exact circuit that failed (after the pass stack), via
    :func:`repro.core.serialize.save_circuit`.
``error.json``
    :func:`repro.errors.error_document` of the failure — class, exit
    code, and (for deadlocks) the stall-attributed per-task
    diagnostics with source locations.
``stats.json``
    SimStats of the doomed run when available (the engine stamps
    partial stats onto simulation failures).
``REPRO.txt``
    One human-readable paragraph plus the exact replay command.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from ..core.serialize import save_circuit
from ..errors import error_document
from ..sim.faults import FaultPlan

BUNDLE_SCHEMA = "repro.bundle/v1"


def _dump(path: str, doc) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, default=str)
        fh.write("\n")


def write_bundle(directory: str, case_id: str, *, workload: str,
                 variant: str, pass_spec: str, mode: str,
                 plan: FaultPlan, original_plan: Optional[FaultPlan] = None,
                 circuit=None, error: Optional[BaseException] = None,
                 detail: Optional[dict] = None) -> str:
    """Write one repro bundle; returns the bundle directory path."""
    bundle = os.path.join(directory, case_id)
    n = 1
    while os.path.exists(bundle):
        n += 1
        bundle = os.path.join(directory, f"{case_id}-{n}")
    os.makedirs(bundle)

    replay = f"python -m repro fuzz --replay {bundle}"
    manifest = {
        "schema": BUNDLE_SCHEMA,
        "case": case_id,
        "workload": workload,
        "variant": variant,
        "passes": pass_spec,
        "mode": mode,
        "categories": plan.active_categories(),
        "replay": replay,
    }
    _dump(os.path.join(bundle, "fault_plan.json"), plan.to_json())
    if original_plan is not None and original_plan != plan:
        _dump(os.path.join(bundle, "original_plan.json"),
              original_plan.to_json())
    if circuit is not None:
        save_circuit(circuit, os.path.join(bundle, "circuit.json"))
        manifest["circuit"] = "circuit.json"
    if error is not None:
        doc = error_document(error)
        if detail:
            doc["detail"] = detail
        _dump(os.path.join(bundle, "error.json"), doc)
        manifest["error"] = {"class": doc["error"],
                             "exit_code": doc["exit_code"]}
        stats = getattr(error, "stats", None)
        if stats is not None:
            _dump(os.path.join(bundle, "stats.json"), stats.to_json())
    elif detail:
        _dump(os.path.join(bundle, "error.json"),
              {"error": "LIViolationError", "detail": detail})
    _dump(os.path.join(bundle, "manifest.json"), manifest)

    lines = [
        f"Fuzz case {case_id} failed.",
        "",
        f"  workload : {workload} (variant {variant})",
        f"  passes   : {pass_spec or '(none)'}",
        f"  mode     : {mode}",
        f"  faults   : {plan.describe()}",
        "",
        "Replay with:",
        f"  {replay}",
        "",
        "The fault plan is knobs + one seed; every per-site decision",
        "re-derives from stable hashes, so the replay perturbs the",
        "exact same channels, units and grants as the original run.",
    ]
    with open(os.path.join(bundle, "REPRO.txt"), "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return bundle


def load_bundle(path: str) -> dict:
    """Read a bundle directory back: manifest with ``plan`` attached."""
    with open(os.path.join(path, "manifest.json")) as fh:
        manifest = json.load(fh)
    if manifest.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(
            f"unsupported bundle schema {manifest.get('schema')!r}")
    with open(os.path.join(path, "fault_plan.json")) as fh:
        manifest["plan"] = FaultPlan.from_json(json.load(fh))
    return manifest

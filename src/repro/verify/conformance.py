"""Latency-insensitivity conformance fuzzing.

The uIR execution model is latency-insensitive: a circuit's results
and final memory image are a function of the dataflow graph alone,
never of component timing.  This module checks that claim in anger by
running workloads under seeded :class:`~repro.sim.faults.FaultPlan`
perturbations and asserting the **LI invariant**:

    cycles may change; results and memory must be bit-identical.

Three modes per case:

``fault``
    The same circuit simulated fault-free (reference) and under the
    plan.  Any divergence is a protocol violation in the simulator or
    in a uopt transform's channel bookkeeping.
``differential``
    The base (un-optimized) circuit and the pass-instrumented circuit
    simulated under the *same* plan.  Catches transforms that are only
    correct for the latencies they were tuned against.
``kernel``
    The same circuit under the same plan (or fault-free, when the plan
    is ``None``) on two simulation kernels — ``kernel`` vs
    ``compare_kernel``.  Kernels claim *bit identity*, so this mode is
    stricter than the LI invariant: cycle counts must match too.
``batch``
    The batched driver (:func:`repro.sim.simulate_batch`) versus the
    scalar baseline.  Fault-free, every lane must be bit-identical to
    the scalar run *including cycles*.  Under a fault plan the policy
    is the enforced scalar fallback (DESIGN.md section 9): the batch
    must report ``mode == "sequential"`` and every lane must uphold
    the LI invariant against the fault-free baseline.

Failures are greedily minimized over fault categories (drop a whole
dimension, keep the drop when the failure persists) and written as
replayable bundles (:mod:`repro.verify.artifacts`).  Everything is
deterministic from one ``--seed``: plan generation, per-site fault
decisions, and verdict ordering — two runs produce identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import LIViolationError, ReproError, exit_code_for
from ..frontend import translate_module
from ..opt import PassManager, parse_passes
from ..sim import SimParams, simulate
from ..sim.faults import FaultPlan
from ..util.rng import derive_seed
from ..workloads import get_workload, workload_names
from .artifacts import write_bundle

FUZZ_SCHEMA = "repro.fuzzreport/v1"

#: Pass stack exercised by ``repro fuzz`` when none is given: the full
#: uopt pipeline, so conformance covers every transform at once.
DEFAULT_FUZZ_PASSES = ("memory_localization,scratchpad_banking,"
                       "op_fusion,task_pipelining,perf_counters")


def passes_from_spec(spec: Optional[str]) -> list:
    """Spec text -> fresh pass instances (see :mod:`repro.opt.specs`).

    Thin compatibility shim over :func:`repro.opt.parse_passes`, which
    also understands aliases (``localize``) and knob arguments
    (``banking=4``).
    """
    return parse_passes(spec)


@dataclass
class CaseResult:
    """Verdict of one (workload, plan, mode) execution."""

    workload: str
    variant: str
    pass_spec: str
    mode: str                      # "fault" / "differential" / "kernel"
    plan: Optional[FaultPlan]      # None: fault-free "kernel" case
    ok: bool = False
    cycles_ref: int = 0
    cycles_run: int = 0
    error: str = ""                # exception class name on failure
    message: str = ""
    exit_code: int = 0
    bundle: str = ""               # repro bundle path, if written
    minimized: Optional[List[str]] = None
    #: Raw failure objects, kept off the JSON (bundling only).
    last_exc: Optional[BaseException] = field(
        default=None, repr=False, compare=False)
    last_detail: Optional[dict] = field(
        default=None, repr=False, compare=False)

    @property
    def case_id(self) -> str:
        tag = "nofault" if self.plan is None \
            else f"{self.plan.seed & 0xFFFFFFFF:08x}"
        return f"{self.workload}-{self.variant}-{self.mode}-{tag}"

    def to_json(self) -> dict:
        doc = {
            "case": self.case_id,
            "workload": self.workload,
            "variant": self.variant,
            "passes": self.pass_spec,
            "mode": self.mode,
            "plan_seed": self.plan.seed if self.plan else None,
            "categories": self.plan.active_categories()
            if self.plan else [],
            "ok": self.ok,
            "cycles_ref": self.cycles_ref,
            "cycles_run": self.cycles_run,
        }
        if not self.ok:
            doc.update(error=self.error, message=self.message,
                       exit_code=self.exit_code, bundle=self.bundle,
                       minimized=self.minimized)
        return doc

    def describe(self) -> str:
        verdict = "ok" if self.ok else f"FAIL[{self.error}]"
        return (f"{self.case_id:<40} {verdict:<24} "
                f"cycles {self.cycles_ref} -> {self.cycles_run}")


@dataclass
class FuzzReport:
    """All verdicts of one fuzz invocation, deterministic per seed."""

    seed: int
    pass_spec: str
    differential: bool
    intensity: float
    plan_seeds: List[int] = field(default_factory=list)
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    def failures(self) -> List[CaseResult]:
        return [c for c in self.cases if not c.ok]

    def to_json(self) -> dict:
        return {
            "schema": FUZZ_SCHEMA,
            "seed": self.seed,
            "passes": self.pass_spec,
            "differential": self.differential,
            "intensity": self.intensity,
            "plan_seeds": self.plan_seeds,
            "cases": [c.to_json() for c in self.cases],
            "total": len(self.cases),
            "failed": len(self.failures()),
            "ok": self.ok,
        }

    def summary(self) -> str:
        total, failed = len(self.cases), len(self.failures())
        verdict = "all conformant" if failed == 0 \
            else f"{failed} VIOLATION(S)"
        return (f"fuzz: {total} case(s), seed={self.seed}: {verdict}")


def minimize_plan(plan: FaultPlan,
                  still_fails: Callable[[FaultPlan], bool]) -> FaultPlan:
    """Greedy delta-debugging over fault categories.

    Repeatedly drop one whole fault dimension; keep the drop whenever
    the failure persists.  At most ``|categories|^2`` re-runs.  The
    result is the smallest category set that still reproduces — the
    bundle a human actually wants to stare at.
    """
    steps = telemetry.metrics().counter("fuzz.minimizer_steps")
    changed = True
    while changed:
        changed = False
        for cat in plan.active_categories():
            candidate = plan.without(cat)
            steps.inc()
            if still_fails(candidate):
                plan = candidate
                changed = True
    return plan


class ConformanceFuzzer:
    """Build-once / perturb-many LI conformance driver.

    Circuits and fault-free baselines are cached per
    ``(workload, variant, pass_spec)``, so N plans cost N+1 simulations
    per configuration, not 2N.
    """

    def __init__(self, pass_spec: str = "", differential: bool = False,
                 artifacts_dir: Optional[str] = None,
                 kernel: str = "event",
                 compare_kernel: Optional[str] = None,
                 max_cycles: int = 2_000_000,
                 wallclock_timeout: Optional[float] = None,
                 deadlock_window: int = 4_000, minimize: bool = True,
                 batch: bool = False):
        self.pass_spec = pass_spec
        self.differential = differential
        self.artifacts_dir = artifacts_dir
        self.kernel = kernel
        #: When set, every plan also runs in mode "kernel": this kernel
        #: vs ``kernel`` on identical inputs, cycles included.
        self.compare_kernel = compare_kernel
        #: When set, every workload also runs in mode "batch": batched
        #: per-lane identity, and the scalar-fallback policy under
        #: fault plans.
        self.batch = batch
        self.max_cycles = max_cycles
        self.wallclock_timeout = wallclock_timeout
        self.deadlock_window = deadlock_window
        self.minimize = minimize
        self._circuits: Dict[Tuple[str, str, str], object] = {}
        self._baselines: Dict[Tuple[str, str, str],
                              Tuple[list, list, int]] = {}

    # -- cached building ----------------------------------------------------
    def _circuit(self, workload: str, variant: str, spec: str):
        key = (workload, variant, spec)
        if key not in self._circuits:
            w = get_workload(workload)
            circuit = translate_module(
                w.module(variant), name=f"{workload}_{variant}")
            PassManager(passes_from_spec(spec)).run(circuit)
            self._circuits[key] = circuit
        return self._circuits[key]

    def _params(self, plan: Optional[FaultPlan],
                kernel: Optional[str] = None) -> SimParams:
        return SimParams(max_cycles=self.max_cycles,
                         deadlock_window=self.deadlock_window,
                         kernel=kernel or self.kernel,
                         observe="counters",
                         faults=plan, compile_fallback=False,
                         wallclock_timeout=self.wallclock_timeout)

    def _run(self, workload: str, variant: str, spec: str,
             plan: Optional[FaultPlan],
             kernel: Optional[str] = None) -> Tuple[list, list, int]:
        """Simulate one configuration; returns (results, words, cycles)."""
        w = get_workload(workload)
        circuit = self._circuit(workload, variant, spec)
        mem = w.fresh_memory(variant)
        result = simulate(circuit, mem, list(w.args_for(variant)),
                          self._params(plan, kernel))
        return list(result.results), list(mem.words), result.cycles

    def _baseline(self, workload: str, variant: str,
                  spec: str) -> Tuple[list, list, int]:
        key = (workload, variant, spec)
        if key not in self._baselines:
            self._baselines[key] = self._run(workload, variant, spec,
                                             None)
        return self._baselines[key]

    # -- one case -----------------------------------------------------------
    @staticmethod
    def _diff(ref: Tuple[list, list, int],
              got: Tuple[list, list, int]) -> Optional[dict]:
        """None when bit-identical, else a compact violation record."""
        detail: dict = {}
        if ref[0] != got[0]:
            detail["results"] = {"want": ref[0], "got": got[0]}
        if ref[1] != got[1]:
            bad = [(i, w, g) for i, (w, g)
                   in enumerate(zip(ref[1], got[1])) if w != g]
            detail["memory"] = {
                "mismatched_words": len(bad),
                "first": [{"addr": i, "want": w, "got": g}
                          for i, w, g in bad[:8]],
            }
        return detail or None

    def run_case(self, workload: str, plan: Optional[FaultPlan],
                 variant: str = "base",
                 mode: str = "fault") -> CaseResult:
        """Execute one case; on failure, minimize and write a bundle.

        ``plan`` may be ``None`` only in mode "kernel" (fault-free
        bit-identity check); such failures reproduce directly with
        ``--kernel`` so no minimization or bundle is needed.
        """
        spec = self.pass_spec
        case = CaseResult(workload=workload, variant=variant,
                          pass_spec=spec, mode=mode, plan=plan)
        case.error, case.message = self._verdict(
            workload, variant, mode, plan, case)
        case.ok = not case.error
        met = telemetry.metrics()
        met.counter("fuzz.cases").inc(mode=mode)
        if case.ok:
            return case
        met.counter("fuzz.violations").inc(mode=mode,
                                           error=case.error)
        case.exit_code = case.exit_code or 7
        if plan is None:
            case.minimized = []
            return case
        original = plan
        if self.minimize:
            failing = case.error

            def still_fails(candidate: FaultPlan) -> bool:
                probe = CaseResult(workload=workload, variant=variant,
                                   pass_spec=spec, mode=mode,
                                   plan=candidate)
                err, _msg = self._verdict(workload, variant, mode,
                                          candidate, probe)
                return err == failing

            case.plan = minimize_plan(plan, still_fails)
        case.minimized = case.plan.active_categories()
        if self.artifacts_dir:
            case.bundle = write_bundle(
                self.artifacts_dir, case.case_id,
                workload=workload, variant=variant, pass_spec=spec,
                mode=mode, plan=case.plan, original_plan=original,
                circuit=self._circuit(workload, variant, spec),
                error=case.last_exc, detail=case.last_detail)
        return case

    def _verdict(self, workload: str, variant: str, mode: str,
                 plan: Optional[FaultPlan],
                 case: CaseResult) -> Tuple[str, str]:
        """Run reference + faulted sides; classify the outcome.

        Returns ("", "") on conformance, else (error class, message);
        stashes the raw exception / diff on ``case`` for bundling.
        """
        case.last_exc = None
        case.last_detail = None
        spec = self.pass_spec
        if mode == "batch":
            return self._verdict_batch(workload, variant, plan, case)
        try:
            if mode == "differential":
                # Base vs instrumented circuit, same plan on both.
                ref = self._run(workload, variant, "", plan)
                got = self._run(workload, variant, spec, plan)
            elif mode == "kernel":
                # Same circuit, same plan, two kernels.
                ref = self._baseline(workload, variant, spec) \
                    if plan is None \
                    else self._run(workload, variant, spec, plan)
                got = self._run(workload, variant, spec, plan,
                                kernel=self.compare_kernel)
            else:
                ref = self._baseline(workload, variant, spec)
                got = self._run(workload, variant, spec, plan)
        except ReproError as exc:
            case.last_exc = exc
            case.exit_code = exit_code_for(exc)
            return type(exc).__name__, str(exc)
        case.cycles_ref, case.cycles_run = ref[2], got[2]
        detail = self._diff(ref, got)
        if mode == "kernel" and detail is None and ref[2] != got[2]:
            # Kernels must agree cycle-for-cycle, not just on behavior.
            detail = {"cycles": {"want": ref[2], "got": got[2]}}
        if detail is None:
            return "", ""
        case.last_detail = detail
        exc = LIViolationError(
            f"{workload}/{variant} [{mode}] diverged under "
            f"{plan.describe() if plan else 'no faults'}", detail)
        case.last_exc = exc
        case.exit_code = exit_code_for(exc)
        return type(exc).__name__, str(exc)

    def _verdict_batch(self, workload: str, variant: str,
                       plan: Optional[FaultPlan],
                       case: CaseResult) -> Tuple[str, str]:
        """Batch-conformance verdict (3 lanes vs the scalar baseline).

        Fault-free: strict bit identity per lane, cycles included.
        With a plan: the enforced scalar-fallback policy must hold
        (``BatchResult.mode == "sequential"``) and every lane must
        satisfy the LI invariant against the fault-free baseline.
        """
        from ..sim import simulate_batch

        spec = self.pass_spec
        w = get_workload(workload)
        n = 3
        try:
            ref = self._baseline(workload, variant, spec)
            circuit = self._circuit(workload, variant, spec)
            args = list(w.args_for(variant))
            mems = [w.fresh_memory(variant) for _ in range(n)]
            batch = simulate_batch(circuit, mems, [args] * n,
                                   self._params(plan))
        except ReproError as exc:
            case.last_exc = exc
            case.exit_code = exit_code_for(exc)
            return type(exc).__name__, str(exc)
        case.cycles_ref = ref[2]
        detail: Optional[dict] = None
        if plan is not None and batch.mode != "sequential":
            detail = {"policy": {"want": "sequential",
                                 "got": batch.mode}}
        for i in range(n):
            if detail is not None:
                break
            if batch.errors[i] is not None:
                detail = {"lane": i, "lane_error": batch.errors[i]}
                break
            got = (list(batch.results[i].results),
                   list(mems[i].words), batch.results[i].cycles)
            if i == 0:
                case.cycles_run = got[2]
            detail = self._diff(ref, got)
            if detail is None and plan is None and ref[2] != got[2]:
                # Fault-free batching claims bit identity, cycles
                # included; under a plan only behavior must hold.
                detail = {"cycles": {"want": ref[2], "got": got[2]}}
            if detail is not None:
                detail["lane"] = i
        if detail is None:
            return "", ""
        case.last_detail = detail
        exc = LIViolationError(
            f"{workload}/{variant} [batch] diverged "
            f"{'under ' + plan.describe() if plan else 'fault-free'}",
            detail)
        case.last_exc = exc
        case.exit_code = exit_code_for(exc)
        return type(exc).__name__, str(exc)

    # -- the fuzz loop ------------------------------------------------------
    def fuzz(self, workloads: Optional[Sequence[str]] = None,
             n_plans: int = 5, seed: int = 0, intensity: float = 1.0,
             progress: Optional[Callable[[CaseResult], None]] = None
             ) -> FuzzReport:
        """Every workload x N generated plans (x2 with differential)."""
        names = list(workloads) if workloads else workload_names()
        report = FuzzReport(seed=seed, pass_spec=self.pass_spec,
                            differential=self.differential,
                            intensity=intensity)
        plans = [FaultPlan.generate(derive_seed(seed, "plan", i),
                                    intensity)
                 for i in range(n_plans)]
        report.plan_seeds = [p.seed for p in plans]
        with telemetry.tracer().span("fuzz.run", category="verify",
                                     seed=seed, plans=n_plans,
                                     workloads=len(names)) as _sp:
            self._fuzz_cases(names, plans, report, progress)
            _sp.set(cases=len(report.cases),
                    failed=len(report.failures()))
        return report

    def _fuzz_cases(self, names, plans, report, progress) -> None:
        for name in names:
            if self.compare_kernel:
                # Fault-free bit-identity first: the cheapest, most
                # common divergence repro.
                case = self.run_case(name, None, mode="kernel")
                report.cases.append(case)
                if progress is not None:
                    progress(case)
            if self.batch:
                # Fault-free batched bit-identity per lane.
                case = self.run_case(name, None, mode="batch")
                report.cases.append(case)
                if progress is not None:
                    progress(case)
            for plan in plans:
                modes = ["fault"]
                if self.differential and self.pass_spec:
                    modes.append("differential")
                if self.compare_kernel:
                    modes.append("kernel")
                if self.batch:
                    modes.append("batch")
                for mode in modes:
                    case = self.run_case(name, plan, mode=mode)
                    report.cases.append(case)
                    if progress is not None:
                        progress(case)


def replay_bundle(path: str, kernel: str = "event",
                  max_cycles: int = 2_000_000) -> CaseResult:
    """Re-run the case captured in a repro bundle directory."""
    from .artifacts import load_bundle
    manifest = load_bundle(path)
    fuzzer = ConformanceFuzzer(pass_spec=manifest.get("passes", ""),
                               kernel=kernel, max_cycles=max_cycles,
                               minimize=False)
    return fuzzer.run_case(manifest["workload"], manifest["plan"],
                           variant=manifest.get("variant", "base"),
                           mode=manifest.get("mode", "fault"))

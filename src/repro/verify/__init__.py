"""Conformance verification: LI fuzzing, minimization, repro bundles.

See :mod:`repro.verify.conformance` for the fuzzer and
:mod:`repro.verify.artifacts` for the on-disk bundle format.
"""

from .artifacts import BUNDLE_SCHEMA, load_bundle, write_bundle  # noqa: F401
from .conformance import (  # noqa: F401
    DEFAULT_FUZZ_PASSES, FUZZ_SCHEMA, CaseResult, ConformanceFuzzer,
    FuzzReport, minimize_plan, passes_from_spec, replay_bundle)

"""ARM Cortex-A9-like CPU cycle model (paper Figure 18 baseline)."""

from .arm_model import ArmA9Model, CpuResult  # noqa: F401

"""Dual-issue in-order-window CPU cycle model, ARM Cortex-A9 flavoured.

The paper compares optimized uIR accelerators against an "ARM A9 1 GHz
dual issue out-of-order processor" and attributes the accelerator's win
to (i) more ILP than a dual-issue window, (ii) compute density of
tensor units, (iii) no front-end overhead.  This model captures exactly
those mechanisms: each executed basic block is list-scheduled onto a
2-wide issue window with realistic operation latencies, memory ops pay
L1 hit latency (the working sets here fit in L1), and control flow pays
a front-end/branch cost with a 1-bit dynamic predictor.

The block schedule is computed once per static block and replayed along
the dynamic trace from the reference interpreter, so the model is both
fast and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..frontend.interp import Interpreter, Memory
from ..frontend.ir import (
    BasicBlock,
    Branch,
    Call,
    CondBranch,
    Instruction,
    Module,
    Phi,
)

#: Per-opcode result latency (cycles) on the modeled core.
CPU_LATENCY: Dict[str, int] = {
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1, "not": 1,
    "neg": 1, "abs": 1, "shl": 1, "lshr": 1, "ashr": 1,
    "mul": 3, "div": 12, "rem": 12,
    "eq": 1, "ne": 1, "lt": 1, "le": 1, "gt": 1, "ge": 1,
    "select": 1, "gep": 1,
    "fadd": 4, "fsub": 4, "fmul": 5, "fdiv": 15, "fneg": 1,
    "exp": 30, "sqrt": 17, "itof": 3, "ftoi": 3,
    "load": 4, "store": 1,
    # Tensor intrinsics execute as scalar loop bodies on the CPU
    # (NEON-free baseline, matching the paper's scalar comparison):
    # cost filled in dynamically from the tile shape.
}

ISSUE_WIDTH = 2
BRANCH_COST = 1
MISPREDICT_PENALTY = 8
CALL_OVERHEAD = 10
FREQ_MHZ = 1000.0


@dataclass
class CpuResult:
    cycles: int
    instructions: int

    @property
    def time_us(self) -> float:
        return self.cycles / FREQ_MHZ

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def _tensor_cost(instr: Instruction) -> int:
    t = instr.type if instr.type.bits else instr.operands[0].type
    elems = getattr(t, "elements", 4)
    if instr.opcode == "tmul":
        # rows*cols dot products of length cols: muls + adds.
        return elems * (getattr(t, "cols", 2) * 2)
    if instr.opcode in ("tadd", "tsub", "trelu"):
        return elems
    if instr.opcode in ("tload", "tstore"):
        return elems * 2
    return elems


def _block_cost(block: BasicBlock) -> int:
    """List-schedule the block DAG at ISSUE_WIDTH; returns cycles."""
    ready_at: Dict[object, int] = {}
    issued_in_cycle: Dict[int, int] = {}
    count = 0
    for instr in block.instructions:
        if isinstance(instr, Phi):
            continue
        count += 1
        if isinstance(instr, (Branch, CondBranch)):
            continue  # charged by the front-end model
        dep_ready = 0
        for op in instr.operands:
            if isinstance(op, Instruction) and op in ready_at:
                dep_ready = max(dep_ready, ready_at[op])
        slot = dep_ready
        while issued_in_cycle.get(slot, 0) >= ISSUE_WIDTH:
            slot += 1
        issued_in_cycle[slot] = issued_in_cycle.get(slot, 0) + 1
        if instr.opcode.startswith("t") and instr.opcode in (
                "tmul", "tadd", "tsub", "trelu", "tload", "tstore"):
            latency = _tensor_cost(instr)
        else:
            latency = CPU_LATENCY.get(instr.opcode, 1)
        ready_at[instr] = slot + latency
    finish = max(ready_at.values(), default=0)
    slots = max(issued_in_cycle, default=0)
    return max(finish, slots + 1, (count + ISSUE_WIDTH - 1)
               // ISSUE_WIDTH)


class ArmA9Model:
    """Estimates cycles for a module execution on the modeled core."""

    def __init__(self, module: Module):
        self.module = module
        self._block_costs: Dict[BasicBlock, int] = {}

    def run(self, memory: Optional[Memory] = None, *args) -> CpuResult:
        mem = memory if memory is not None else Memory(self.module)
        state = {"cycles": 0, "last_block": None,
                 "predictor": {}, "instrs": 0}

        def hook(block: BasicBlock) -> None:
            cost = self._block_costs.get(block)
            if cost is None:
                cost = _block_cost(block)
                self._block_costs[block] = cost
            state["cycles"] += cost
            state["instrs"] += sum(
                1 for i in block.instructions if not isinstance(i, Phi))
            prev = state["last_block"]
            if prev is not None and isinstance(prev.terminator,
                                               CondBranch):
                predictor = state["predictor"]
                predicted = predictor.get(prev)
                state["cycles"] += BRANCH_COST
                if predicted is not None and predicted is not block:
                    state["cycles"] += MISPREDICT_PENALTY
                predictor[prev] = block
            for instr in block.instructions:
                if isinstance(instr, Call):
                    state["cycles"] += CALL_OVERHEAD
            state["last_block"] = block

        interp = Interpreter(self.module, mem, block_hook=hook)
        interp.run(*args)
        return CpuResult(cycles=state["cycles"],
                         instructions=state["instrs"])


def estimate_cpu(module: Module, memory: Optional[Memory], *args) -> CpuResult:
    """One-shot helper mirroring :func:`repro.sim.simulate`."""
    return ArmA9Model(module).run(memory, *args)

"""Table 4 — conciseness of uIR vs FIRRTL (paper section 7).

For SAXPY, STENCIL and IMAGE-SCALE we apply three transformations
(execution tile 1->2, add one more SRAM, fuse operations) at the uIR
level, and count how many graph elements change in each representation:
the uIR graph deltas come from the pass framework's accounting, the
FIRRTL deltas from structurally diffing the lowered circuits.  The
final column is the FIRRTL/uIR whole-graph size ratio (paper:
8.4-12.4x).
"""

from repro.bench.reporting import emit, format_table
from repro.frontend import translate_module
from repro.opt import (
    ExecutionTiling,
    MemoryLocalization,
    OpFusion,
    PassManager,
)
from repro.rtl import diff_circuits, lower_to_firrtl
from repro.workloads import WORKLOADS

NAMES = ["saxpy", "stencil", "img_scale"]


def _first_array(workload):
    return sorted(workload.module().globals)[0]


def _measure(workload, make_pass):
    """(uIR dN, uIR dE, FIRRTL dN, FIRRTL dE) for one transformation."""
    before = translate_module(workload.module())
    firrtl_before = lower_to_firrtl(before)
    after = translate_module(workload.module())
    log = PassManager([make_pass()]).run(after)
    firrtl_after = lower_to_firrtl(after)
    dn, de = diff_circuits(firrtl_before, firrtl_after)
    return (log[0].delta_nodes, log[0].delta_edges, dn, de,
            firrtl_before)


def _run():
    rows = []
    ratios = {}
    per_transform = {}
    for name in NAMES:
        w = WORKLOADS[name]
        tile = _measure(w, lambda: ExecutionTiling(2))
        sram = _measure(
            w, lambda: MemoryLocalization(arrays=[_first_array(w)]))
        fuse = _measure(w, lambda: OpFusion())
        circuit = translate_module(w.module())
        uir_nodes = circuit.stats()["nodes"]
        ratio = tile[4].stats()["nodes"] / max(1, uir_nodes)
        ratios[name] = ratio
        per_transform[name] = {"tile": tile, "sram": sram,
                               "fuse": fuse}
        rows.append([name,
                     tile[0], tile[1], tile[2], tile[3],
                     sram[0], sram[1], sram[2], sram[3],
                     fuse[0], fuse[1], fuse[2], fuse[3],
                     round(ratio, 1)])
    return rows, ratios, per_transform


def test_table4_conciseness(once):
    rows, ratios, per_transform = once(_run)
    emit("table4_conciseness", format_table(
        ["bench",
         "tile dN(uIR)", "dE(uIR)", "dN(FIR)", "dE(FIR)",
         "sram dN(uIR)", "dE(uIR)", "dN(FIR)", "dE(FIR)",
         "fuse dN(uIR)", "dE(uIR)", "dN(FIR)", "dE(FIR)",
         "FIR/uIR"], rows,
        title="Table 4: elements touched per transformation, "
              "uIR vs FIRRTL"))

    for name in NAMES:
        # Paper: whole-graph ratio 8.4-12.4x; ours lands 6-10x.
        assert 5.0 <= ratios[name] <= 14.0, (name, ratios[name])
        for kind, m in per_transform[name].items():
            duir = m[0] + m[1]
            dfir = m[2] + m[3]
            # Every transformation touches far fewer uIR elements.
            assert dfir >= 2 * max(1, duir), (name, kind, m[:4])

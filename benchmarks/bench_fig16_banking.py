"""Figure 16 — effect of cache banking, 1-4 banks (paper section 6.4,
1.05-1.8x where memory-level parallelism exists; 2MM sees little).

Banking pays off when concurrent accesses exist to spread over banks;
as in the paper's designs, the measurement uses the deeper invocation
pipelining the execution model allows (loop_invocation_window=4, see
EXPERIMENTS.md).
"""

from repro.bench.configs import banking_stack
from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table
from repro.sim import SimParams

NAMES = ["gemm", "fft", "2mm", "3mm", "saxpy", "conv"]
BANKS = [2, 4]


def _params():
    return SimParams(loop_invocation_window=4)


def _run():
    rows = []
    curves = {}
    for name in NAMES:
        base = run_workload(name, params=_params())
        speeds = {1: 1.0}
        for banks in BANKS:
            r = run_workload(name, banking_stack(banks),
                             f"{banks}B", params=_params())
            speeds[banks] = base.time_us / r.time_us
        curves[name] = speeds
        rows.append([name, base.cycles] +
                    [round(speeds[b], 2) for b in BANKS])
    return rows, curves


def test_fig16_cache_banking(once):
    rows, curves = once(_run)
    emit("fig16_banking", format_table(
        ["bench", "base_cycles", "2 banks", "4 banks"], rows,
        title="Figure 16: L1 cache banking speedup (1 bank = 1)"))

    # Workloads with parallel access patterns benefit...
    gainers = [n for n in ("gemm", "fft", "3mm")
               if curves[n][4] >= 1.05]
    assert len(gainers) >= 2, curves
    # ...and nothing collapses; flat workloads stay flat (paper: SAXPY
    # reads two streams and gains little from 4-way partitioning).
    for name, speeds in curves.items():
        assert 0.90 <= speeds[2] <= 2.0, (name, speeds)
        assert 0.90 <= speeds[4] <= 2.0, (name, speeds)
    assert curves["saxpy"][4] <= 1.15, curves["saxpy"]

"""Table 2 — Synthesizing baseline uIR accelerators.

Regenerates the paper's Table 2: FPGA frequency/power/resources and
ASIC frequency/power/area for every baseline accelerator.  Shape
checks: FP workloads land in the high-300s-to-500 MHz band, Cilk
accelerators land lower (queueing logic on the critical path), tensor
blocks clock highest, and ASIC clocks are 1.4-2.5 GHz.
"""

from repro.bench.reporting import emit, format_table
from repro.frontend import translate_module
from repro.rtl import synthesize
from repro.workloads import WORKLOADS

_TENSOR = ("relu_t", "2mm_t", "conv_t")


def _run():
    rows = []
    reports = {}
    for name, w in WORKLOADS.items():
        variant = "tensor" if name in _TENSOR and \
            "tensor" in w.variants else "base"
        circuit = translate_module(w.module(variant))
        report = synthesize(circuit, name)
        reports[name] = report
        r = report.row()
        rows.append([name, w.category, r["MHz"], r["mW"], r["ALMs"],
                     r["Reg"], r["DSP"], r["kum2"], r["asic_mW"],
                     r["GHz"]])
    return rows, reports


def test_table2_synthesis(once):
    rows, reports = once(_run)
    emit("table2_synthesis", format_table(
        ["bench", "suite", "MHz", "mW", "ALMs", "Reg", "DSP",
         "kum2", "asic_mW", "GHz"], rows,
        title="Table 2: baseline uIR synthesis "
              "(FPGA Arria-10-class / ASIC 28nm-class models)"))

    fp = [reports[n].fpga_mhz for n, w in WORKLOADS.items()
          if w.fp and w.category in ("polybench", "tensorflow")]
    cilk = [reports[n].fpga_mhz for n, w in WORKLOADS.items()
            if w.category == "cilk"]
    tensor = [reports[n].fpga_mhz for n in _TENSOR]

    # Paper: FP 354-425 MHz; Cilk 206-314 MHz; tensor up to ~500 MHz.
    assert all(330 <= f <= 510 for f in fp), fp
    assert all(180 <= f <= 360 for f in cilk), cilk
    assert max(cilk) < min(tensor), (cilk, tensor)
    # Paper: FPGA power roughly 0.5-1.5 W.
    for name, rep in reports.items():
        assert 400 <= rep.fpga_mw <= 1600, (name, rep.fpga_mw)
        assert 1.3 <= rep.asic_ghz <= 2.55, (name, rep.asic_ghz)

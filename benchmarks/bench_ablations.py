"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure: these quantify the model decisions the calibration
section documents, so future changes to the execution model can be
checked against them.

* handshake staging (2-register baseline edges vs balanced edges),
* loop-control pipeline depth (the paper's 5-stage example vs retimed),
* invocation pipelining window,
* task-queue depth (coupled vs decoupled interfaces),
* writeback buffers on scratchpads.
"""

import pytest

from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table
from repro.frontend import translate_module
from repro.frontend.interp import Memory
from repro.opt import (
    MemoryLocalization,
    OpFusion,
    ParameterTuning,
    Pass,
    PassManager,
    ScratchpadBanking,
    WritebackBuffer,
)
from repro.sim import SimParams, simulate
from repro.workloads import get_workload


class _Debuffer(OpFusion):
    """Edge balancing only (no chain fusion, no retiming)."""

    name = "debuffer_only"

    def __init__(self):
        super().__init__(retime_loop_control=False)

    def _find_chains(self, task, budget):
        return []


class _Retime(Pass):
    name = "retime_only"

    def __init__(self, stages):
        self.stages = stages

    def apply(self, circuit):
        n = 0
        for t in circuit.tasks.values():
            for ctl in t.dataflow.nodes_of_kind("loopctl"):
                ctl.pipeline_stages = self.stages
                n += 1
        return self._result(n > 0)


def _cycles(name, passes=(), params=None):
    return run_workload(name, passes, "ablation", params=params).cycles


def _run():
    rows = []

    base = _cycles("gemm")
    rows.append(["handshake staging (gemm)", base,
                 _cycles("gemm", [_Debuffer()]),
                 "balanced edges drop a register per hop"])

    rows.append(["loopctl depth 5->2 (covar)", _cycles("covar"),
                 _cycles("covar", [_Retime(2)]),
                 "iteration issue interval"])

    w = get_workload("gemm")
    c = translate_module(w.module())
    m1 = w.fresh_memory()
    win1 = simulate(c, m1, list(w.args),
                    SimParams(loop_invocation_window=1)).cycles
    c = translate_module(w.module())
    m4 = w.fresh_memory()
    win4 = simulate(c, m4, list(w.args),
                    SimParams(loop_invocation_window=4)).cycles
    rows.append(["invocation window 1->4 (gemm)", win1, win4,
                 "concurrent loop invocations per tile"])

    w = get_workload("saxpy")
    def queue_depth(depth):
        circuit = translate_module(w.module())
        for edge in circuit.task_edges:
            edge.queue_depth = depth
        mem = w.fresh_memory()
        return simulate(circuit, mem, list(w.args)).cycles
    rows.append(["task queue 1->16 (saxpy)", queue_depth(1),
                 queue_depth(16), "coupled vs decoupled <||>"])

    sub = [MemoryLocalization(), ScratchpadBanking(2),
           ParameterTuning()]
    rows.append(["writeback buffer (fft, localized)",
                 _cycles("fft", sub),
                 _cycles("fft", sub + [WritebackBuffer(8)]),
                 "stores complete at buffer entry"])

    return rows


def test_ablations(once):
    rows = once(_run)
    table_rows = [[r[0], r[1], r[2], round(r[1] / r[2], 2), r[3]]
                  for r in rows]
    emit("ablations", format_table(
        ["knob", "before_cyc", "after_cyc", "ratio", "what it models"],
        table_rows, title="Model ablations (cycles; ratio >1 = knob "
                          "helps)"))
    by_name = {r[0]: r for r in rows}
    # Each knob must move the needle in its documented direction.
    assert by_name["handshake staging (gemm)"][2] < \
        by_name["handshake staging (gemm)"][1]
    assert by_name["loopctl depth 5->2 (covar)"][2] < \
        by_name["loopctl depth 5->2 (covar)"][1]
    assert by_name["invocation window 1->4 (gemm)"][2] < \
        by_name["invocation window 1->4 (gemm)"][1]
    assert by_name["task queue 1->16 (saxpy)"][2] <= \
        by_name["task queue 1->16 (saxpy)"][1]
    assert by_name["writeback buffer (fft, localized)"][2] <= \
        by_name["writeback buffer (fft, localized)"][1] * 1.02

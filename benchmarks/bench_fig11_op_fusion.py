"""Figure 11 — execution-time improvement from auto-pipelining and
op fusion (paper section 6.1, 1.2-1.6x on FFT/SPMV/COVAR/SAXPY).

Our reproduction shows the gain on SPMV/COVAR/SAXPY/GEMM; our FFT is
dominated by in-place stage serialization plus memory bandwidth (see
EXPERIMENTS.md for the analysis), so fusion is roughly neutral there.
"""

from repro.bench.configs import fusion_stack
from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table

NAMES = ["fft", "spmv", "covar", "saxpy", "gemm"]


def _run():
    rows = []
    speedups = {}
    for name in NAMES:
        base = run_workload(name)
        fused = run_workload(name, fusion_stack(), "fusion")
        speedup = base.time_us / fused.time_us
        speedups[name] = speedup
        details = fused.pass_log[0].details
        rows.append([name, base.cycles, fused.cycles,
                     details.get("chains", 0),
                     details.get("edges_debuffered", 0),
                     round(fused.cycles / base.cycles, 2),
                     round(speedup, 2)])
    return rows, speedups


def test_fig11_op_fusion(once):
    rows, speedups = once(_run)
    emit("fig11_op_fusion", format_table(
        ["bench", "base_cyc", "fused_cyc", "chains", "debuffered",
         "normalized_exe", "speedup"], rows,
        title="Figure 11: op-fusion / auto-pipelining "
              "(baseline = 1)"))

    # Paper band: 1.17-1.7x; our fusable workloads land 1.05-1.4x.
    for name in ("spmv", "covar", "saxpy", "gemm"):
        assert speedups[name] >= 1.04, (name, speedups[name])
        assert speedups[name] <= 2.0, (name, speedups[name])
    # FFT deviation is bounded (documented in EXPERIMENTS.md).
    assert speedups["fft"] >= 0.85, speedups["fft"]

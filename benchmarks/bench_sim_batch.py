#!/usr/bin/env python
"""Batched-simulation throughput benchmark.

Measures workload simulations per wall-second when one compiled
circuit steps N independent lanes at once (``simulate_batch``) versus
sequential compiled runs, at batch sizes 1 / 4 / 16.  The headline
number is the geomean batch-16 speedup over sequential — that is what
CI gates on (geomean, not per-workload: single workloads swing several
points with machine noise; the geomean is the stable signal).

Methodology follows bench_sim_throughput.py:

* **Interleaved** timing — one iteration of every batch size per
  round, repeated, taking the per-size minimum, so the minima see the
  same machine state.
* **Circuit built once** per workload and reused; the compiled kernel
  hits its object-identity memo exactly as in real DSE usage.
* Per-lane inputs perturbed in their float words so the payload
  genuinely diverges across lanes (the vectorized path is the one
  being measured, not a degenerate all-identical batch), while the
  control stays uniform.
* Fresh memory per lane per run, ``observe="off"``, ``validate=False``.

Usage:
    PYTHONPATH=src python benchmarks/bench_sim_batch.py \
        [--workloads gemm,fft,saxpy,stencil] [--batches 1,4,16] \
        [--repeat 3] [--min-batch-speedup 2.0] [--json FILE]

Exits non-zero if the geomean batch-16 (largest requested batch)
speedup over sequential falls below ``--min-batch-speedup``, or if any
batched run fails to stay in vectorized mode or drops a lane.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time

from repro.core.lanes import have_numpy, numpy_note
from repro.frontend.translate import translate_module
from repro.sim.engine import SimParams, simulate, simulate_batch
from repro.workloads import WORKLOADS

BENCH_SCHEMA = "repro.bench_sim_batch/v1"
DEFAULT_WORKLOADS = "gemm,fft,saxpy,stencil"
DEFAULT_BATCHES = "1,4,16"
DEFAULT_JSON = os.path.join(os.path.dirname(__file__), "results",
                            "BENCH_sim_batch.json")


def fresh_lanes(w, n: int, seed: int = 7):
    """N per-lane memories with diverging float payloads."""
    rng = random.Random(seed)
    lanes = []
    for _ in range(n):
        mem = w.fresh_memory()
        for i, v in enumerate(mem.words):
            if type(v) is float and rng.random() < 0.4:
                mem.words[i] = float(rng.randrange(-50, 50))
        lanes.append(mem)
    return lanes


def run_sequential(w, circuit, n: int):
    """N back-to-back compiled runs; returns (sims, wall_seconds)."""
    lanes = fresh_lanes(w, n)
    args = list(w.args_for())
    params = SimParams(kernel="compiled", observe="off", validate=False)
    t0 = time.perf_counter()
    for mem in lanes:
        simulate(circuit, mem, list(args), params)
    return n, time.perf_counter() - t0


def run_batched(w, circuit, n: int):
    """One batch-of-N run; returns (sims, wall_seconds, mode)."""
    lanes = fresh_lanes(w, n)
    args = list(w.args_for())
    params = SimParams(kernel="compiled", observe="off", validate=False)
    t0 = time.perf_counter()
    res = simulate_batch(circuit, lanes, [list(args)] * n, params)
    wall = time.perf_counter() - t0
    if not res.ok:
        raise RuntimeError(f"batch run dropped a lane: {res.errors}")
    return n, wall, res.mode


def bench_workload(name: str, batches, repeat: int):
    """Interleaved best-of-``repeat`` walls for sequential + batches."""
    w = WORKLOADS[name]
    circuit = translate_module(w.module(), name=f"{name}_bsbench")
    seq_n = max(batches)
    best_seq = None
    best = {n: None for n in batches}
    modes = {}
    run_sequential(w, circuit, seq_n)       # warm-up (compile, caches)
    for n in batches:
        run_batched(w, circuit, n)
    for _ in range(repeat):
        _, wall = run_sequential(w, circuit, seq_n)
        if best_seq is None or wall < best_seq:
            best_seq = wall
        for n in batches:
            _, wall, mode = run_batched(w, circuit, n)
            modes[n] = mode
            if best[n] is None or wall < best[n]:
                best[n] = wall
    return seq_n, best_seq, best, modes


def geomean(values) -> float:
    vals = [v for v in values if v is not None]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--workloads", default=DEFAULT_WORKLOADS)
    ap.add_argument("--batches", default=DEFAULT_BATCHES,
                    help="comma-separated batch sizes; the largest is "
                         "the gated one")
    ap.add_argument("--repeat", type=int, default=3)
    ap.add_argument("--min-batch-speedup", type=float, default=0.0,
                    help="fail if the geomean largest-batch speedup "
                         "over sequential is below this")
    ap.add_argument("--json", default=None, metavar="FILE",
                    help=f"write results as JSON (default when run "
                         f"with no flag: nothing; pass 'default' for "
                         f"{DEFAULT_JSON})")
    args = ap.parse_args(argv)

    batches = sorted({int(b) for b in args.batches.split(",") if b.strip()})
    if not batches or min(batches) < 1:
        ap.error("--batches must name positive integers")
    top = max(batches)

    note = numpy_note()
    if note:
        print(note, file=sys.stderr)

    rows = []
    failed = []
    for name in args.workloads.split(","):
        name = name.strip()
        seq_n, seq_wall, walls, modes = bench_workload(
            name, batches, args.repeat)
        seq_sps = seq_n / seq_wall
        row = {
            "workload": name,
            "sequential": {"sims": seq_n,
                           "wall_s": round(seq_wall, 4),
                           "sims_per_s": round(seq_sps, 2)},
            "batched": {},
        }
        parts = [f"{name}: seq {seq_sps:,.1f} sims/s"]
        for n in batches:
            sps = n / walls[n]
            speedup = sps / seq_sps
            row["batched"][str(n)] = {
                "wall_s": round(walls[n], 4),
                "sims_per_s": round(sps, 2),
                "speedup": round(speedup, 3),
                "mode": modes[n],
            }
            parts.append(f"b{n} {sps:,.1f} sims/s "
                         f"({speedup:.2f}x, {modes[n]})")
            if n > 1 and modes[n] != "vectorized":
                failed.append(f"{name}: batch {n} ran in "
                              f"{modes[n]!r} mode, not vectorized")
        rows.append(row)
        print(" | ".join(parts))

    top_speedups = [r["batched"][str(top)]["speedup"] for r in rows]
    summary = {
        "batch": top,
        "speedup_geomean": round(geomean(top_speedups), 3),
        "numpy": have_numpy(),
    }
    print(f"geomean batch-{top} speedup "
          f"{summary['speedup_geomean']:.2f}x "
          f"(numpy={'yes' if summary['numpy'] else 'no'})")
    gate = args.min_batch_speedup
    if gate and summary["speedup_geomean"] < gate:
        failed.append(f"geomean batch-{top} speedup "
                      f"{summary['speedup_geomean']:.2f}x < {gate}x")

    json_path = DEFAULT_JSON if args.json == "default" else args.json
    if json_path:
        os.makedirs(os.path.dirname(json_path) or ".", exist_ok=True)
        doc = {
            "schema": BENCH_SCHEMA,
            "batches": batches,
            "repeat": args.repeat,
            "rows": rows,
            "geomean": summary,
        }
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {json_path}")
    for msg in failed:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 1 (headline plot) — representative per-pass gains.

The paper's teaser quotes Op Fusion 1.4x, Task Tiling 6.0x, Tensor
Intrinsics 8.5x, Locality 1.5x.  This bench reproduces the same four
bars from representative workloads.
"""

from repro.bench.configs import (
    fusion_stack,
    localization_stack,
    tiling_stack,
)
from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table


def _run():
    bars = {}

    base = run_workload("covar")
    fused = run_workload("covar", fusion_stack(), "fusion")
    bars["op_fusion (covar)"] = base.time_us / fused.time_us

    base = run_workload("fib", localization_stack(4), "sub")
    tiled = run_workload("fib", localization_stack(4) + tiling_stack(8),
                         "8T")
    bars["task_tiling (fib, 8T)"] = base.time_us / tiled.time_us

    base = run_workload("2mm_t")
    tensor = run_workload("2mm_t", config="tensor", variant="tensor")
    bars["tensor_intrinsics (2mm_t)"] = base.time_us / tensor.time_us

    base = run_workload("spmv")
    local = run_workload("spmv", localization_stack(2), "local")
    bars["locality (spmv)"] = base.time_us / local.time_us

    rows = [[k, round(v, 2)] for k, v in bars.items()]
    return rows, bars


def test_fig1_summary(once):
    rows, bars = once(_run)
    emit("fig1_summary", format_table(
        ["optimization", "speedup"], rows,
        title="Figure 1 plot: headline per-pass improvements "
              "(paper: fusion 1.4x, tiling 6.0x, tensor 8.5x, "
              "locality 1.5x)"))

    assert bars["op_fusion (covar)"] >= 1.1
    assert bars["task_tiling (fib, 8T)"] >= 3.0
    assert bars["tensor_intrinsics (2mm_t)"] >= 4.0
    assert bars["locality (spmv)"] >= 1.2

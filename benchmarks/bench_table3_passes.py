"""Table 3 — summary of uopt passes (category, beneficiaries, measured
improvement range), regenerated from live runs of representative
workloads."""

from repro.bench.configs import (
    banking_stack,
    fusion_stack,
    localization_stack,
    tensor_stack,
    tiling_stack,
)
from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table

PASSES = [
    ("Op fusion", "Timing", ["spmv", "covar", "gemm"],
     lambda name: (run_workload(name),
                   run_workload(name, fusion_stack(), "f"))),
    ("Task tiling", "Spatial", ["stencil", "saxpy", "fib"],
     lambda name: (run_workload(name, localization_stack(4), "sub"),
                   run_workload(name, localization_stack(4)
                                + tiling_stack(8), "t"))),
    ("Tensor ops", "Higher Ops", ["relu_t"],
     lambda name: (run_workload(name),
                   run_workload(name, tensor_stack(), "t"))),
    ("Memory localization", "Timing&Spatial", ["spmv", "saxpy"],
     lambda name: (run_workload(name),
                   run_workload(name, localization_stack(), "l"))),
    ("Cache banking", "Timing&Spatial", ["fft", "3mm"],
     lambda name: (run_workload(name),
                   run_workload(name, banking_stack(4), "b"))),
]

PAPER = {
    "Op fusion": "1.4x", "Task tiling": "6x", "Tensor ops": "8x",
    "Memory localization": "1.3x", "Cache banking": "1.5x",
}


def _run():
    rows = []
    measured = {}
    for pass_name, category, names, runner in PASSES:
        speedups = []
        for name in names:
            base, opt = runner(name)
            speedups.append(base.time_us / opt.time_us)
        lo, hi = min(speedups), max(speedups)
        measured[pass_name] = (lo, hi)
        rows.append([pass_name, category, ", ".join(names),
                     PAPER[pass_name],
                     f"{lo:.2f}x - {hi:.2f}x"])
    return rows, measured


def test_table3_pass_summary(once):
    rows, measured = once(_run)
    emit("table3_passes", format_table(
        ["pass", "type", "benchmarks", "paper (peak)",
         "measured range"], rows,
        title="Table 3: uopt pass catalog with live measurements"))
    # Every pass shows a benefit on at least one beneficiary.
    for name, (lo, hi) in measured.items():
        assert hi >= 1.05, (name, lo, hi)

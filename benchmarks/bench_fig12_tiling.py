"""Figure 12 — concurrency tiling: execution units per task 1/2/4/8
(paper section 6.2, 1.5-6x on the Cilk workloads).

As in the paper, tiling is measured on accelerators whose memory
system can feed the tiles (per-array scratchpads, banked; our
EXPERIMENTS.md documents this substrate).  SAXPY saturates early
(memory bound), STENCIL/IMG-SCALE/FIB scale further.
"""

from repro.bench.configs import localization_stack, tiling_stack
from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table

NAMES = ["stencil", "saxpy", "img_scale", "fib", "msort"]
TILES = [2, 4, 8]


def _substrate():
    return localization_stack(banks=4)


def _run():
    rows = []
    curves = {}
    for name in NAMES:
        base = run_workload(name, _substrate(), "1T")
        speeds = {1: 1.0}
        for tiles in TILES:
            r = run_workload(name, _substrate() + tiling_stack(tiles),
                             f"{tiles}T")
            speeds[tiles] = base.time_us / r.time_us
        curves[name] = speeds
        rows.append([name, base.cycles] +
                    [round(speeds[t], 2) for t in TILES])
    return rows, curves


def test_fig12_tiling(once):
    rows, curves = once(_run)
    emit("fig12_tiling", format_table(
        ["bench", "base_cycles", "2T", "4T", "8T"], rows,
        title="Figure 12: execution tiling speedup (1 tile = 1)"))

    for name, speeds in curves.items():
        # Tiling never hurts, and 8T lands in the paper's 1.5-6x band
        # (fib's pure task parallelism may exceed it slightly).
        assert speeds[2] >= 1.15, (name, speeds)
        assert speeds[8] >= speeds[2] * 0.9, (name, speeds)
        assert 1.4 <= speeds[8] <= 9.0, (name, speeds)
    # SAXPY is memory bound: most of its win arrives by 2-4 tiles.
    assert curves["saxpy"][2] >= 1.5, curves["saxpy"]
    # The compute-dense kernels keep scaling to 8 tiles.
    for name in ("stencil", "img_scale", "fib"):
        assert curves[name][8] > curves[name][2], (name, curves[name])

"""Figure 15 — tensor higher-order ops (paper section 6.3, 4-8x on
RELU[T], 2MM[T], CONV[T]).

RELU[T] is transformed *automatically* by the TensorOps uopt pass from
its scalar form; 2MM[T]/CONV[T] use the tensor-intrinsic source (the
paper's Figure 13 style), compared against scalar implementations of
the same tile math.
"""

from repro.bench.configs import tensor_stack
from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table


def _run():
    rows = []
    speedups = {}

    # RELU[T]: scalar baseline -> TensorOps pass rewrites the loop.
    base = run_workload("relu_t")
    opt = run_workload("relu_t", tensor_stack(2, 2), "tensor_pass")
    assert opt.pass_log[0].details["tensorized"], \
        "TensorOps failed to match the scalar ReLU loop"
    speedups["relu_t"] = base.time_us / opt.time_us
    rows.append(["relu_t", "uopt pass", base.cycles, opt.cycles,
                 round(opt.cycles / base.cycles, 2),
                 round(speedups["relu_t"], 2)])

    # 2MM[T], CONV[T]: tensor-intrinsic source vs scalar tile math.
    for name in ("2mm_t", "conv_t"):
        base = run_workload(name)
        opt = run_workload(name, config="tensor_src", variant="tensor")
        speedups[name] = base.time_us / opt.time_us
        rows.append([name, "tensor intrinsics", base.cycles,
                     opt.cycles, round(opt.cycles / base.cycles, 2),
                     round(speedups[name], 2)])
    return rows, speedups


def test_fig15_tensor_ops(once):
    rows, speedups = once(_run)
    emit("fig15_tensor_ops", format_table(
        ["bench", "mechanism", "scalar_cyc", "tensor_cyc",
         "normalized_exe", "speedup"], rows,
        title="Figure 15: Tensor2D higher-order function units "
              "(scalar pipeline = 1)"))

    # Paper band: 4-8x.  The 2x2 ReLU unit (4 lanes) gives ~3-4x; the
    # matmul-bearing kernels land squarely in band.
    assert 2.5 <= speedups["relu_t"] <= 9.0, speedups["relu_t"]
    for name in ("2mm_t", "conv_t"):
        assert 3.5 <= speedups[name] <= 11.0, (name, speedups[name])

#!/usr/bin/env python
"""Simulation-kernel throughput benchmark.

Runs selected workloads under the simulation kernels (dense reference
sweep, event-driven wakeup kernel, compiled step-closure kernel,
steady-state trace kernel) and reports simulated cycles per
wall-second plus the pairwise speedups.

Methodology (what several rounds of container benchmarking taught):

* **Interleaved** timing — one iteration of every kernel per round,
  repeated, taking the per-kernel minimum.  Back-to-back blocks per
  kernel read 30-60% run-to-run noise on shared machines; interleaving
  makes the minima see the same machine state.
* **Circuit built once** per workload and reused across runs.  This is
  the real usage pattern (DSE evaluates one circuit many times) and it
  lets the compiled kernel hit its object-identity memo instead of
  re-fingerprinting per run — rebuilding per run would charge the
  cache key to every single simulation.
* Fresh memory per run, ``observe="off"``, ``validate=False`` so the
  measurement is the kernel loop, not instrumentation.

Usage:
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py \
        [--workloads gemm,fft,saxpy,stencil] [--config allopts] \
        [--kernels dense,event,compiled,trace] [--repeat 5] \
        [--min-speedup 1.0] [--min-compiled-speedup 1.0] \
        [--min-trace-speedup 1.0] [--json FILE]

Exits non-zero if any workload's event/dense speedup falls below
``--min-speedup``, or if the *geomean* compiled/event (trace/event)
speedup falls below ``--min-compiled-speedup``
(``--min-trace-speedup``) (geomean, not per-workload: single
workloads swing several points with machine noise; the geomean is the
stable signal CI can gate on).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

from repro.workloads import WORKLOADS
from repro.bench.configs import all_opts_for
from repro.frontend.translate import translate_module
from repro.opt.pass_manager import PassManager
from repro.sim.engine import SimParams, simulate

BENCH_SCHEMA = "repro.bench_sim_throughput/v3"
DEFAULT_WORKLOADS = "gemm,fft,saxpy,stencil"
DEFAULT_KERNELS = "dense,event,compiled,trace"
DEFAULT_JSON = os.path.join(os.path.dirname(__file__), "results",
                            "BENCH_sim_throughput.json")


def build_circuit(name: str, config: str):
    w = WORKLOADS[name]
    passes = [] if config == "baseline" else all_opts_for(name)
    circuit = translate_module(w.module(), name=f"{name}_{config}")
    PassManager(list(passes)).run(circuit)
    return w, circuit


def run_once(w, circuit, kernel: str):
    """One timed simulation; returns (cycles, wall_seconds)."""
    mem = w.fresh_memory()
    params = SimParams(kernel=kernel, observe="off", validate=False)
    t0 = time.perf_counter()
    res = simulate(circuit, mem, list(w.args_for()), params)
    return res.cycles, time.perf_counter() - t0


def bench_workload(name: str, config: str, kernels, repeat: int):
    """Interleaved best-of-``repeat`` walls for every kernel."""
    w, circuit = build_circuit(name, config)
    cycles = None
    best = {k: None for k in kernels}
    for k in kernels:          # warm-up round (compile, caches, JIT-y
        run_once(w, circuit, k)  # bytecode specialization)
    for _ in range(repeat):
        for k in kernels:
            c, wall = run_once(w, circuit, k)
            cycles = c
            if best[k] is None or wall < best[k]:
                best[k] = wall
    return cycles, best


def geomean(values) -> float:
    vals = [v for v in values if v is not None]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--workloads", default=DEFAULT_WORKLOADS)
    ap.add_argument("--config", default="allopts",
                    choices=("baseline", "allopts"))
    ap.add_argument("--kernels", default=DEFAULT_KERNELS,
                    help="comma-separated subset of "
                         "dense,event,compiled,trace")
    ap.add_argument("--repeat", type=int, default=5)
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="fail if any per-workload event/dense speedup "
                         "is below this")
    ap.add_argument("--min-compiled-speedup", type=float, default=0.0,
                    help="fail if the geomean compiled/event speedup "
                         "is below this")
    ap.add_argument("--min-trace-speedup", type=float, default=0.0,
                    help="fail if the geomean trace/event speedup "
                         "is below this")
    ap.add_argument("--json", default=None, metavar="FILE",
                    help=f"write results as JSON (default when run "
                         f"with no flag: nothing; pass 'default' for "
                         f"{DEFAULT_JSON})")
    args = ap.parse_args(argv)

    kernels = [k.strip() for k in args.kernels.split(",") if k.strip()]
    for k in kernels:
        if k not in ("dense", "event", "compiled", "trace"):
            ap.error(f"unknown kernel {k!r}")

    rows = []
    failed = []
    for name in args.workloads.split(","):
        name = name.strip()
        cycles, walls = bench_workload(name, args.config, kernels,
                                       args.repeat)
        row = {
            "workload": name,
            "config": args.config,
            "cycles": cycles,
            "wall_s": {k: round(w, 4) for k, w in walls.items()},
            "cps": {k: round(cycles / w) for k, w in walls.items()},
        }
        if "dense" in walls and "event" in walls:
            row["event_over_dense"] = round(
                walls["dense"] / walls["event"], 3)
        if "event" in walls and "compiled" in walls:
            row["compiled_over_event"] = round(
                walls["event"] / walls["compiled"], 3)
        if "event" in walls and "trace" in walls:
            row["trace_over_event"] = round(
                walls["event"] / walls["trace"], 3)
        rows.append(row)
        parts = [f"{name}/{args.config}: {cycles} cycles"]
        for k in kernels:
            parts.append(f"{k} {walls[k]:.3f}s "
                         f"({cycles / walls[k]:,.0f} cyc/s)")
        if "event_over_dense" in row:
            s = row["event_over_dense"]
            flag = ""
            if args.min_speedup and s < args.min_speedup:
                failed.append(f"{name}: event/dense {s:.2f}x "
                              f"< {args.min_speedup}x")
                flag = f"  << below {args.min_speedup}x"
            parts.append(f"event/dense {s:.2f}x{flag}")
        if "compiled_over_event" in row:
            parts.append(
                f"compiled/event {row['compiled_over_event']:.2f}x")
        if "trace_over_event" in row:
            parts.append(
                f"trace/event {row['trace_over_event']:.2f}x")
        print(" | ".join(parts))

    summary = {
        "event_over_dense": round(geomean(
            r.get("event_over_dense") for r in rows), 3) or None,
        "compiled_over_event": round(geomean(
            r.get("compiled_over_event") for r in rows), 3) or None,
        "trace_over_event": round(geomean(
            r.get("trace_over_event") for r in rows), 3) or None,
    }
    shown = [f"geomean {k.replace('_over_', '/')} {v:.2f}x"
             for k, v in summary.items() if v]
    if shown:
        print(" | ".join(shown))
    gate = args.min_compiled_speedup
    if gate and summary["compiled_over_event"] is not None \
            and summary["compiled_over_event"] < gate:
        failed.append(f"geomean compiled/event "
                      f"{summary['compiled_over_event']:.2f}x < {gate}x")
    tgate = args.min_trace_speedup
    if tgate and summary["trace_over_event"] is not None \
            and summary["trace_over_event"] < tgate:
        failed.append(f"geomean trace/event "
                      f"{summary['trace_over_event']:.2f}x < {tgate}x")

    json_path = DEFAULT_JSON if args.json == "default" else args.json
    if json_path:
        os.makedirs(os.path.dirname(json_path) or ".", exist_ok=True)
        doc = {
            "schema": BENCH_SCHEMA,
            "config": args.config,
            "kernels": kernels,
            "repeat": args.repeat,
            "rows": rows,
            "geomean": summary,
        }
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {json_path}")
    for msg in failed:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Simulation-kernel throughput benchmark.

Runs selected workloads under both simulation kernels (the dense
reference sweep and the event-driven wakeup kernel) and reports
simulated cycles per wall-second plus the event/dense speedup.
Wall times are best-of-N to suppress scheduler noise; both kernels
run in the same process on the same circuits, so the ratio is
machine-independent.

Usage:
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py \
        [--workloads gemm,fft,saxpy,stencil] [--config baseline] \
        [--repeat 3] [--min-speedup 1.0] [--json FILE]

Exits non-zero if any workload's event/dense speedup falls below
``--min-speedup`` (used by CI as a regression gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.workloads import WORKLOADS
from repro.bench.configs import all_opts_for
from repro.frontend.translate import translate_module
from repro.opt.pass_manager import PassManager
from repro.sim.engine import SimParams, simulate

DEFAULT_WORKLOADS = "gemm,fft,saxpy,stencil"


def bench_one(name: str, config: str, kernel: str, repeat: int):
    w = WORKLOADS[name]
    passes = [] if config == "baseline" else all_opts_for(name)
    best = None
    cycles = None
    for _ in range(repeat):
        circuit = translate_module(w.module(), name=f"{name}_{config}")
        PassManager(list(passes)).run(circuit)
        mem = w.fresh_memory()
        params = SimParams(kernel=kernel, observe="off")
        t0 = time.perf_counter()
        res = simulate(circuit, mem, list(w.args_for()), params)
        wall = time.perf_counter() - t0
        cycles = res.cycles
        best = wall if best is None else min(best, wall)
    return cycles, best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workloads", default=DEFAULT_WORKLOADS)
    ap.add_argument("--config", default="baseline",
                    choices=("baseline", "allopts"))
    ap.add_argument("--repeat", type=int, default=3)
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="fail if any event/dense speedup is below this")
    ap.add_argument("--json", default=None,
                    help="write results to FILE as JSON")
    args = ap.parse_args(argv)

    rows = []
    failed = False
    for name in args.workloads.split(","):
        name = name.strip()
        cycles, dense_wall = bench_one(name, args.config, "dense",
                                       args.repeat)
        _, event_wall = bench_one(name, args.config, "event",
                                  args.repeat)
        speedup = dense_wall / event_wall
        rows.append({
            "workload": name,
            "config": args.config,
            "cycles": cycles,
            "dense_wall_s": round(dense_wall, 4),
            "event_wall_s": round(event_wall, 4),
            "dense_cps": round(cycles / dense_wall),
            "event_cps": round(cycles / event_wall),
            "speedup": round(speedup, 2),
        })
        flag = ""
        if args.min_speedup and speedup < args.min_speedup:
            failed = True
            flag = f"  << below {args.min_speedup}x"
        print(f"{name}/{args.config}: {cycles} cycles | "
              f"dense {dense_wall:.3f}s ({cycles/dense_wall:,.0f} cyc/s) | "
              f"event {event_wall:.3f}s ({cycles/event_wall:,.0f} cyc/s) | "
              f"speedup {speedup:.2f}x{flag}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rows, fh, indent=2)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 18 — fully-optimized uIR accelerators vs an ARM A9 @ 1 GHz
(paper section 6.6, 2-17x in the accelerator's favour).

Accelerator time = simulated cycles / modeled FPGA clock; CPU time =
dual-issue-model cycles / 1 GHz, both running identical programs.
The tensor workloads use the Tensor2D function units (the paper's
compute-density argument).
"""

from repro.bench.configs import all_opts_for
from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table
from repro.cpu.arm_model import ArmA9Model
from repro.workloads import WORKLOADS

NAMES = ["gemm", "covar", "fft", "spmv", "2mm", "3mm", "img_scale",
         "relu_t", "2mm_t", "conv_t"]
_TENSOR_SRC = ("2mm_t", "conv_t")


def _run():
    rows = []
    speedups = {}
    for name in NAMES:
        w = WORKLOADS[name]
        if name in _TENSOR_SRC:
            acc = run_workload(name, config="tensor", variant="tensor")
        else:
            acc = run_workload(name, all_opts_for(name), "stacked")
        cpu = ArmA9Model(w.module()).run(w.fresh_memory(), *w.args)
        speedup = cpu.time_us / acc.time_us
        speedups[name] = speedup
        rows.append([name, acc.cycles, round(acc.fpga_mhz),
                     cpu.cycles, round(speedup, 2)])
    return rows, speedups


def test_fig18_vs_arm(once):
    rows, speedups = once(_run)
    emit("fig18_vs_arm", format_table(
        ["bench", "acc_cycles", "acc_MHz", "arm_cycles",
         "speedup_vs_ARM"], rows,
        title="Figure 18: optimized uIR vs ARM A9 1 GHz (ARM = 1, "
              ">1 accelerator wins)"))

    # Paper: accelerators win 2-17x.
    for name, speedup in speedups.items():
        assert speedup >= 1.2, (name, speedup)
        assert speedup <= 30.0, (name, speedup)
    assert sum(1 for s in speedups.values() if s >= 2.0) >= 7, speedups
    # Tensor function units deliver the top of the range.
    assert max(speedups[n] for n in ("relu_t", "2mm_t", "conv_t")) \
        >= 4.0, speedups

"""Shared fixtures for the experiment benchmarks.

Each ``bench_*`` module regenerates one table or figure from the paper
(see DESIGN.md section 4).  Results print to stdout and persist under
``benchmarks/results/``.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""
    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1,
                                  warmup_rounds=0)
    return runner

"""Figure 17 — stacking multiple uopt optimizations (paper section 6.5,
cumulative 20%-4.2x).

Cilk accelerators get Banking+Fusion+Tiling; everything else gets
Banking+Localization+OpFusion (the paper's two groups).
"""

from repro.bench.configs import CILK_SET, all_opts_for
from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table

NAMES = ["saxpy", "stencil", "img_scale", "gemm", "covar", "fft",
         "spmv", "2mm", "3mm", "conv", "dense8", "dense16",
         "softm8", "softm16"]


def _run():
    rows = []
    speedups = {}
    for name in NAMES:
        base = run_workload(name)
        opt = run_workload(name, all_opts_for(name), "stacked")
        speedup = base.time_us / opt.time_us
        speedups[name] = speedup
        group = "Banking,Fusion,Tile" if name in CILK_SET \
            else "Banking,Localization,Op-Fusion"
        rows.append([name, group, base.cycles, opt.cycles,
                     round(opt.cycles / base.cycles, 2),
                     round(speedup, 2)])
    return rows, speedups


def test_fig17_stacked(once):
    rows, speedups = once(_run)
    emit("fig17_stacked", format_table(
        ["bench", "stack", "base_cyc", "opt_cyc", "normalized_exe",
         "speedup"], rows,
        title="Figure 17: stacked uopt optimizations (baseline = 1)"))

    # Paper: cumulative benefits between ~1.2x and 4.2x.
    for name, speedup in speedups.items():
        assert speedup >= 1.05, (name, speedup)
        assert speedup <= 6.0, (name, speedup)
    # The Cilk group (tiling) reaches the top of the band.
    assert max(speedups[n] for n in CILK_SET
               if n in speedups) >= 2.0, speedups

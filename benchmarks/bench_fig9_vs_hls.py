"""Figure 9 — baseline uIR vs commercial-HLS-style accelerators.

Normalized execution time (HLS = 1, lower is better for uIR) for the
loop workloads, combining simulated cycles with each flow's achievable
clock (uIR ~20% higher, paper section 5.2).  Shape checks: uIR wins on
the majority (dataflow execution + clock), and HLS wins on FFT where
its inferred streaming buffers shine.
"""

from repro.bench.harness import run_workload
from repro.bench.reporting import emit, format_table
from repro.hls import estimate_hls
from repro.workloads import WORKLOADS

NAMES = ["gemm", "covar", "fft", "spmv", "2mm", "3mm", "conv",
         "dense8", "dense16", "softm8", "softm16"]


def _run():
    rows = []
    normalized = {}
    for name in NAMES:
        w = WORKLOADS[name]
        uir = run_workload(name)
        hls = estimate_hls(w.module(), w.fresh_memory(), *w.args)
        hls_time = hls.time_at(uir.fpga_mhz)
        norm = uir.time_us / hls_time
        normalized[name] = norm
        rows.append([name, uir.cycles, hls.cycles,
                     round(uir.fpga_mhz), round(norm, 2)])
    return rows, normalized


def test_fig9_vs_hls(once):
    rows, normalized = once(_run)
    emit("fig9_vs_hls", format_table(
        ["bench", "uir_cycles", "hls_cycles", "uir_MHz",
         "normalized_exe (HLS=1, <1 uIR wins)"], rows,
        title="Figure 9: baseline uIR vs HLS"))

    wins = [n for n, v in normalized.items() if v < 1.0]
    # Paper: uIR better on most workloads (10-30%+).
    assert len(wins) >= 7, normalized
    # Paper: HLS's streaming buffers win on FFT.
    assert normalized["fft"] > 1.0, normalized["fft"]
    # GEMM-family: uIR better (nested-loop parallelism + clock).
    for name in ("gemm", "2mm", "3mm", "conv"):
        assert normalized[name] < 0.95, (name, normalized[name])
